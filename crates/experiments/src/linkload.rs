//! Link-load analysis: *why* adaptive routing wins on nonuniform traffic.
//!
//! The paper explains its Section 6 results qualitatively — nonadaptive
//! algorithms "blindly maintain the unevenness of nonuniform traffic".
//! This experiment makes that quantitative: it measures per-channel flit
//! counts under each algorithm and reports the load imbalance (peak /
//! mean), plus an ASCII heatmap of eastbound channel loads.

use turnroute_model::RoutingFunction;
use turnroute_sim::{Sim, SimConfig};
use turnroute_topology::{Direction, Mesh, Topology};
use turnroute_traffic::TrafficPattern;

/// Channel-load statistics of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Flits over the busiest network channel.
    pub peak: u64,
    /// Mean flits per existing network channel.
    pub mean: f64,
    /// Peak / mean — 1.0 is perfectly balanced.
    pub imbalance: f64,
}

/// Measure channel loads for `routing` on a 16×16 mesh under `pattern`
/// at a sub-saturation load.
pub fn measure(
    mesh: &Mesh,
    routing: &dyn RoutingFunction,
    pattern: &dyn TrafficPattern,
    seed: u64,
) -> (LoadStats, Vec<Vec<u64>>) {
    let cfg = SimConfig::builder()
        .injection_rate(0.06)
        .warmup_cycles(2_000)
        .measure_cycles(10_000)
        .drain_cycles(5_000)
        .seed(seed)
        .build();
    let mut sim = Sim::new(mesh, routing, pattern, cfg);
    let _ = sim.run();
    let mut total = 0u64;
    let mut count = 0u64;
    let mut peak = 0u64;
    for node in 0..mesh.num_nodes() {
        let node = turnroute_topology::NodeId(node as u32);
        for dir in Direction::all(2) {
            if mesh.neighbor(node, dir).is_none() {
                continue;
            }
            let load = sim.channel_load(node, dir);
            total += load;
            count += 1;
            peak = peak.max(load);
        }
    }
    let mean = total as f64 / count as f64;
    // Eastbound heatmap rows (y from top = high y first for display).
    let (m, n) = (mesh.radix(0) as u16, mesh.radix(1) as u16);
    let mut grid = Vec::new();
    for y in (0..n).rev() {
        let mut row = Vec::new();
        for x in 0..m.saturating_sub(1) {
            let node = mesh.node_at_coords(&[x, y]);
            row.push(sim.channel_load(node, Direction::EAST));
        }
        grid.push(row);
    }
    (
        LoadStats {
            peak,
            mean,
            imbalance: peak as f64 / mean.max(1e-9),
        },
        grid,
    )
}

fn heatmap(grid: &[Vec<u64>], peak: u64) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    for row in grid {
        for &v in row {
            let idx = if peak == 0 {
                0
            } else {
                ((v as f64 / peak as f64) * (SHADES.len() - 1) as f64).round() as usize
            };
            out.push(SHADES[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Render the link-load comparison for the given algorithms and pattern.
pub fn render(
    algorithms: &[Box<dyn RoutingFunction>],
    pattern: &dyn TrafficPattern,
    seed: u64,
) -> String {
    let mesh = Mesh::new_2d(16, 16);
    let mut out = format!(
        "# Link-load analysis: {} traffic on a 16x16 mesh\n\n\
         Flits per channel during the measurement window; imbalance = peak/mean.\n\n",
        pattern.name()
    );
    for alg in algorithms {
        let (stats, grid) = measure(&mesh, alg, pattern, seed);
        out.push_str(&format!(
            "## {} — peak {}, mean {:.0}, imbalance {:.2}\n\n\
             Eastbound channel loads (top row = north edge):\n\n```\n{}```\n\n",
            alg.name(),
            stats.peak,
            stats.mean,
            stats.imbalance,
            heatmap(&grid, stats.peak),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_routing::{mesh2d, RoutingMode};
    use turnroute_traffic::{MeshTranspose, Uniform};

    #[test]
    fn adaptive_routing_balances_transpose_better() {
        let mesh = Mesh::new_2d(16, 16);
        let (xy, _) = measure(&mesh, &mesh2d::xy(), &MeshTranspose::new(), 3);
        let (nf, _) = measure(
            &mesh,
            &mesh2d::negative_first(RoutingMode::Minimal),
            &MeshTranspose::new(),
            3,
        );
        assert!(
            nf.imbalance < xy.imbalance,
            "negative-first imbalance {:.2} should beat xy {:.2}",
            nf.imbalance,
            xy.imbalance
        );
    }

    #[test]
    fn uniform_traffic_is_roughly_balanced() {
        let mesh = Mesh::new_2d(16, 16);
        let (stats, grid) = measure(&mesh, &mesh2d::xy(), &Uniform::new(), 4);
        assert!(
            stats.imbalance < 4.0,
            "uniform imbalance {:.2}",
            stats.imbalance
        );
        assert_eq!(grid.len(), 16);
        assert_eq!(grid[0].len(), 15);
    }

    #[test]
    fn heatmap_renders_rows() {
        let s = heatmap(&[vec![0, 5, 10], vec![10, 0, 0]], 10);
        assert_eq!(s.lines().count(), 2);
        assert!(s.starts_with(' '));
    }
}
