//! Figures 6–8 and Theorems 2 & 5: channel numbering witnesses.

use turnroute_model::numbering::{
    negative_first_numbering, verify_monotonic, west_first_numbering, Monotonic,
};
use turnroute_routing::{mesh2d, ndmesh, RoutingMode};
use turnroute_topology::{Mesh, Topology};

/// Render the west-first numbering of a 4×4 mesh (the shape of Figure 7)
/// plus mechanical verification of Theorems 2 and 5 on several meshes.
pub fn render() -> String {
    let mut out = String::from("# Figures 6-8 & Theorems 2/5: channel numberings\n\n");

    // Figure 7 analog: the west-first numbering of a 4x4 mesh.
    let mesh = Mesh::new_2d(4, 4);
    let numbers = west_first_numbering(&mesh);
    out.push_str(
        "## West-first numbering of a 4x4 mesh (Figure 7 analog)\n\n\
         Channels listed per source node; the west-first algorithm routes\n\
         every packet along strictly decreasing numbers.\n\n\
         | channel | number |\n|---|---:|\n",
    );
    for ch in mesh.channels() {
        out.push_str(&format!("| {} | {} |\n", ch, numbers[ch.id().index()]));
    }

    out.push_str("\n## Mechanical verification\n\n| mesh | theorem | numbering | verdict |\n|---|---|---|---|\n");
    for (m, n) in [(4u16, 4u16), (8, 8), (16, 16), (5, 9)] {
        let mesh = Mesh::new_2d(m, n);
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let ok = verify_monotonic(
            &mesh,
            &wf,
            &west_first_numbering(&mesh),
            Monotonic::Decreasing,
        )
        .is_ok();
        out.push_str(&format!(
            "| {m}x{n} | Thm 2 (west-first) | two-digit, strictly decreasing | {} |\n",
            if ok { "verified" } else { "VIOLATED" }
        ));
    }
    for dims in [vec![4u16, 4], vec![3, 3, 3], vec![16, 16], vec![2, 5, 4]] {
        let label = dims
            .iter()
            .map(u16::to_string)
            .collect::<Vec<_>>()
            .join("x");
        let mesh = Mesh::new(dims);
        let nf = ndmesh::negative_first(mesh.num_dims(), RoutingMode::Minimal);
        let ok = verify_monotonic(
            &mesh,
            &nf,
            &negative_first_numbering(&mesh),
            Monotonic::Increasing,
        )
        .is_ok();
        out.push_str(&format!(
            "| {label} | Thm 5 (negative-first) | K-n±X, strictly increasing | {} |\n",
            if ok { "verified" } else { "VIOLATED" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_verifies_everything() {
        let s = render();
        assert!(!s.contains("VIOLATED"), "{s}");
        assert_eq!(s.matches("verified").count(), 8, "{s}");
    }
}
