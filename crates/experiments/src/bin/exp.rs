//! `exp` — regenerate the paper's figures and tables.
//!
//! Usage:
//!
//! ```text
//! exp <subcommand> [--quick] [--seed N] [--out DIR]
//!
//! subcommands:
//!   fig1             Figure 1 deadlock demonstration
//!   turn-census      Figures 2-4 + the 16-way census
//!   turn-census-3d   the 4096-way 3D census (extension)
//!   example-paths    Figures 5b/9b/10b path traces
//!   numbering        Figures 6-8, Theorems 2 & 5
//!   theorems         Theorems 1 & 6 counts
//!   adaptiveness-2d  Section 3.4 adaptiveness table
//!   pcube-table      Section 5 10-cube table
//!   fig13 fig14 fig15 fig16   Section 6 sweeps
//!   claims           Section 6 scalar claims
//!   link-load        channel-load imbalance ablation
//!   policy-ablation  input/output selection policy grid ([19])
//!   nonminimal       minimal vs nonminimal, healthy and faulty
//!   vc-ablation      no-extra-channel adaptivity vs double-y VCs
//!   faults           graceful degradation vs failed-link fraction
//!   scope            turnscope saturation-approach study
//!   mc               turncheck exhaustive state-space census
//!   synth            turnsynth escape/adaptive synthesis study
//!   buffer-depth     input-buffer depth sensitivity
//!   node-delay       Section 7's route-selection delay trade-off
//!   all              everything above, written to --out
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use turnroute_experiments::{
    adaptiveness_exp, buffers, census, chaos, claims, faults, fig1, figures, linkload, mc_exp,
    node_delay, nonminimal_exp, numbering_exp, paths, pcube_table, policies, scope, synth_exp,
    theorems, vc_ablation, Scale,
};
use turnroute_model::RoutingFunction;
use turnroute_obslog::artifact;
use turnroute_routing::{mesh2d, RoutingMode};
use turnroute_traffic::MeshTranspose;

struct Options {
    scale: Scale,
    seed: u64,
    out: Option<PathBuf>,
    /// Run sweeps instrumented and write per-point channel heatmaps and
    /// latency histograms (JSON) to this path.
    metrics_out: Option<PathBuf>,
    /// Emit the flit-level event trace / deadlock postmortem (JSONL) for
    /// subcommands that support it (`fig1`).
    trace: bool,
    /// `chaos` only: submit a deliberately stale certificate to the
    /// checker gate; the run passes only if the checker rejects it.
    inject_bad: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: exp <fig1|turn-census|example-paths|numbering|theorems|adaptiveness-2d|\
         pcube-table|fig13|fig14|fig15|fig16|claims|link-load|policy-ablation|nonminimal|vc-ablation|faults|chaos|scope|mc|synth|buffer-depth|node-delay|all> \
         [--quick] [--seed N] [--out DIR] [--metrics-out FILE] [--trace] [--inject-bad]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    let mut opts = Options {
        scale: Scale::Full,
        seed: 1,
        out: None,
        metrics_out: None,
        trace: false,
        inject_bad: false,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => opts.scale = Scale::Quick,
            "--trace" => opts.trace = true,
            "--inject-bad" => opts.inject_bad = true,
            "--seed" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                opts.seed = v;
            }
            "--out" => {
                let Some(v) = args.next() else {
                    return usage();
                };
                opts.out = Some(PathBuf::from(v));
            }
            "--metrics-out" => {
                let Some(v) = args.next() else {
                    return usage();
                };
                opts.metrics_out = Some(PathBuf::from(v));
            }
            _ => return usage(),
        }
    }

    let mut metrics_docs: Vec<String> = Vec::new();
    let outputs: Vec<(&str, String)> = match cmd.as_str() {
        "fig1" => {
            let mut v = vec![("fig1.md", fig1::render())];
            if opts.trace {
                v.push(("fig1_postmortem.jsonl", fig1::postmortem()));
            }
            v
        }
        "turn-census" => vec![("turn_census.md", census::render())],
        "turn-census-3d" => vec![("turn_census_3d.md", census::render_3d())],
        "example-paths" => vec![("example_paths.md", paths::render())],
        "numbering" => vec![("numbering.md", numbering_exp::render())],
        "theorems" => vec![("theorems.md", theorems::render(6))],
        "adaptiveness-2d" => {
            let m = match opts.scale {
                Scale::Quick => 8,
                Scale::Full => 16,
            };
            vec![("adaptiveness_2d.md", adaptiveness_exp::render(m))]
        }
        "pcube-table" => vec![("pcube_table.md", pcube_table::render())],
        "fig13" | "fig14" | "fig15" | "fig16" => {
            let n: u8 = cmd[3..].parse().expect("figure number");
            let (md, csv, svg, metrics) =
                figure_outputs(n, opts.scale, opts.seed, opts.metrics_out.is_some());
            metrics_docs.extend(metrics);
            vec![
                (leak(format!("fig{n}.md")), md),
                (leak(format!("fig{n}.csv")), csv),
                (leak(format!("fig{n}.svg")), svg),
            ]
        }
        "claims" => vec![("claims.md", claims::render(opts.scale, opts.seed))],
        "link-load" => vec![("link_load.md", render_link_load(opts.seed))],
        "policy-ablation" => {
            let wf = mesh2d::west_first(RoutingMode::Minimal);
            vec![(
                "policy_ablation.md",
                policies::render(&wf, opts.scale, opts.seed),
            )]
        }
        "nonminimal" => vec![(
            "nonminimal.md",
            nonminimal_exp::render(opts.scale, opts.seed),
        )],
        "vc-ablation" => vec![("vc_ablation.md", vc_ablation::render(opts.scale, opts.seed))],
        // `--faults` accepted as an alias so the sweep reads naturally as
        // a flag: `exp --faults --quick`.
        "faults" | "--faults" => {
            let (md, csv, json) = fault_outputs(opts.scale, opts.seed);
            vec![
                ("faults.md", md),
                ("faults.csv", csv),
                ("faults.json", json),
            ]
        }
        "chaos" => return run_chaos(&opts),
        "scope" => return run_scope(&opts),
        "mc" => return run_mc(&opts),
        "synth" => return run_synth(&opts),
        "buffer-depth" => vec![("buffer_depth.md", buffers::render(opts.scale, opts.seed))],
        "node-delay" => vec![("node_delay.md", node_delay::render(opts.scale, opts.seed))],
        "all" => {
            let mut v: Vec<(&str, String)> = vec![
                ("fig1.md", fig1::render()),
                ("turn_census.md", census::render()),
                ("turn_census_3d.md", census::render_3d()),
                ("example_paths.md", paths::render()),
                ("numbering.md", numbering_exp::render()),
                ("theorems.md", theorems::render(6)),
                (
                    "adaptiveness_2d.md",
                    adaptiveness_exp::render(match opts.scale {
                        Scale::Quick => 8,
                        Scale::Full => 16,
                    }),
                ),
                ("pcube_table.md", pcube_table::render()),
            ];
            for n in [13u8, 14, 15, 16] {
                eprintln!("running figure {n} sweeps...");
                let (md, csv, svg, metrics) =
                    figure_outputs(n, opts.scale, opts.seed, opts.metrics_out.is_some());
                metrics_docs.extend(metrics);
                v.push((leak(format!("fig{n}.md")), md));
                v.push((leak(format!("fig{n}.csv")), csv));
                v.push((leak(format!("fig{n}.svg")), svg));
            }
            eprintln!("measuring claims...");
            v.push(("claims.md", claims::render(opts.scale, opts.seed)));
            eprintln!("running ablations...");
            v.push(("link_load.md", render_link_load(opts.seed)));
            let wf = mesh2d::west_first(RoutingMode::Minimal);
            v.push((
                "policy_ablation.md",
                policies::render(&wf, opts.scale, opts.seed),
            ));
            v.push((
                "nonminimal.md",
                nonminimal_exp::render(opts.scale, opts.seed),
            ));
            v.push(("vc_ablation.md", vc_ablation::render(opts.scale, opts.seed)));
            v.push(("buffer_depth.md", buffers::render(opts.scale, opts.seed)));
            v.push(("node_delay.md", node_delay::render(opts.scale, opts.seed)));
            eprintln!("running fault-injection sweeps...");
            let (md, csv, json) = fault_outputs(opts.scale, opts.seed);
            v.push(("faults.md", md));
            v.push(("faults.csv", csv));
            v.push(("faults.json", json));
            v
        }
        _ => return usage(),
    };

    for (name, content) in outputs {
        match &opts.out {
            Some(dir) => {
                // The shared artifact writer normalizes every file to
                // exactly one trailing newline, so reruns are
                // byte-identical and diff- and POSIX-tool-friendly.
                let path = dir.join(name);
                if let Err(e) = artifact::write_artifact(&path, &content) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", path.display());
            }
            None => println!("{}", artifact::normalized(content)),
        }
    }
    if let Some(path) = &opts.metrics_out {
        if metrics_docs.is_empty() {
            eprintln!("--metrics-out applies to sweep subcommands (fig13..fig16, all)");
            return ExitCode::FAILURE;
        }
        let doc = if metrics_docs.len() == 1 {
            metrics_docs.remove(0)
        } else {
            format!("[{}]", metrics_docs.join(","))
        };
        if let Err(e) = artifact::write_artifact(path, &doc) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Run the chaos-storm soak: both engines under a seeded MTTF/MTTR fault
/// storm with the healing engine and invariant sanitizer attached. Writes
/// `chaos.md` plus the sealed binary healing log `chaos_heal.ttr`
/// (replayable and byte-comparable via `turnstat`), and fails the process
/// unless the soak passed.
fn run_chaos(opts: &Options) -> ExitCode {
    let report = chaos::soak(opts.scale, opts.seed, opts.inject_bad);
    let md = report.render();
    match &opts.out {
        Some(dir) => {
            if let Err(e) = artifact::write_artifact(&dir.join("chaos.md"), &md) {
                eprintln!("cannot write chaos.md: {e}");
                return ExitCode::FAILURE;
            }
            let ttr = dir.join("chaos_heal.ttr");
            if let Err(e) = std::fs::write(&ttr, &report.log) {
                eprintln!("cannot write {}: {e}", ttr.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", dir.join("chaos.md").display());
            eprintln!("wrote {}", ttr.display());
        }
        None => println!("{}", artifact::normalized(md)),
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos soak FAILED:\n{}", report.render());
        ExitCode::FAILURE
    }
}

/// Run the turnscope saturation-approach study: load ramp with blame
/// decomposition, planted collapse with early-warning lead time, clean
/// heavy-load baseline, and chaos-storm telemetry determinism. Writes
/// `scope.md` and fails the process unless the early-warning contract
/// held.
fn run_scope(opts: &Options) -> ExitCode {
    let report = scope::study(opts.scale, opts.seed);
    let md = report.render();
    match &opts.out {
        Some(dir) => {
            if let Err(e) = artifact::write_artifact(&dir.join("scope.md"), &md) {
                eprintln!("cannot write scope.md: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", dir.join("scope.md").display());
        }
        None => println!("{}", artifact::normalized(md)),
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("scope study FAILED:\n{}", report.render());
        ExitCode::FAILURE
    }
}

/// Run the turncheck state-space census: the full model-checking matrix
/// rendered as a markdown table of reachable-state counts and verdicts.
/// Writes `mc.md` and fails the process unless every configuration met
/// its expectation.
fn run_mc(opts: &Options) -> ExitCode {
    let (md, passed) = mc_exp::study(opts.scale);
    match &opts.out {
        Some(dir) => {
            if let Err(e) = artifact::write_artifact(&dir.join("mc.md"), &md) {
                eprintln!("cannot write mc.md: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", dir.join("mc.md").display());
        }
        None => println!("{}", artifact::normalized(md)),
    }
    if passed {
        ExitCode::SUCCESS
    } else {
        eprintln!("model-checking census FAILED");
        ExitCode::FAILURE
    }
}

/// Run the turnsynth synthesis study: every cyclic configuration of the
/// proof matrix split into certified escape/adaptive classes, rendered as
/// a markdown table with the live cross-validations. Writes `synth.md`
/// and fails the process unless every synthesis was certified.
fn run_synth(opts: &Options) -> ExitCode {
    let (md, passed) = synth_exp::study(opts.scale);
    match &opts.out {
        Some(dir) => {
            if let Err(e) = artifact::write_artifact(&dir.join("synth.md"), &md) {
                eprintln!("cannot write synth.md: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", dir.join("synth.md").display());
        }
        None => println!("{}", artifact::normalized(md)),
    }
    if passed {
        ExitCode::SUCCESS
    } else {
        eprintln!("synthesis study FAILED");
        ExitCode::FAILURE
    }
}

/// Run the graceful-degradation sweep: every turn-model algorithm over
/// the same random link-failure patterns on a uniform-traffic mesh.
fn fault_outputs(scale: Scale, seed: u64) -> (String, String, String) {
    let m = match scale {
        Scale::Quick => 8,
        Scale::Full => 16,
    };
    let mesh = turnroute_topology::Mesh::new_2d(m, m);
    let uniform = turnroute_traffic::Uniform::new();
    let fractions = faults::default_fractions();
    let algorithms: Vec<Box<dyn RoutingFunction + Sync>> = vec![
        Box::new(mesh2d::xy()),
        Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        Box::new(mesh2d::north_last(RoutingMode::Minimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
    ];
    let curves: Vec<_> = algorithms
        .iter()
        .map(|alg| faults::fault_sweep(&mesh, alg.as_ref(), &uniform, &fractions, scale, seed))
        .collect();
    let title = format!("Graceful degradation under link faults, {m}x{m} mesh");
    (
        faults::to_markdown(&curves, &title),
        faults::to_csv(&curves),
        faults::to_json(&curves, &title),
    )
}

fn render_link_load(seed: u64) -> String {
    let algorithms: Vec<Box<dyn RoutingFunction>> = vec![
        Box::new(mesh2d::xy()),
        Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
    ];
    linkload::render(&algorithms, &MeshTranspose::new(), seed)
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// Run one figure's sweeps once and render all artifacts from them;
/// `instrument` additionally captures per-point channel heatmaps and
/// latency histograms and returns them as a JSON document.
fn figure_outputs(
    n: u8,
    scale: Scale,
    seed: u64,
    instrument: bool,
) -> (String, String, String, Option<String>) {
    let (sweeps, title) = match n {
        13 => (
            figures::fig13(scale, seed, instrument),
            "Figure 13: uniform traffic, 16x16 mesh",
        ),
        14 => (
            figures::fig14(scale, seed, instrument),
            "Figure 14: matrix-transpose traffic, 16x16 mesh",
        ),
        15 => (
            figures::fig15(scale, seed, instrument),
            "Figure 15: matrix-transpose traffic, binary 8-cube",
        ),
        16 => (
            figures::fig16(scale, seed, instrument),
            "Figure 16: reverse-flip traffic, binary 8-cube",
        ),
        _ => unreachable!("validated above"),
    };
    let metrics = instrument.then(|| turnroute_experiments::sweep::metrics_json(&sweeps, title));
    let md = turnroute_experiments::sweep::to_markdown(&sweeps, title);
    let mut csv = String::new();
    for (i, s) in sweeps.iter().enumerate() {
        let one = s.to_csv();
        if i == 0 {
            csv.push_str(&one);
        } else {
            // Skip the repeated header line.
            csv.extend(one.split_once('\n').map(|(_, rest)| rest.to_string()));
        }
    }
    let svg = turnroute_experiments::plot::latency_vs_throughput_svg(&sweeps, title, 120.0);
    (md, csv, svg, metrics)
}
