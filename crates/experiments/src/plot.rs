//! Minimal SVG plotting for the paper's figures.
//!
//! Renders latency-vs-throughput curves in the style of Figures 13–16 —
//! delivered throughput (flits/µs) on the x axis, average latency (µs) on
//! the y axis, one polyline per routing algorithm — with no external
//! dependencies. Latency is clipped at a configurable ceiling, as the
//! paper's figures do implicitly (saturated points run off the top).

use crate::sweep::SweepResult;

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 480.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 180.0;
const MARGIN_T: f64 = 50.0;
const MARGIN_B: f64 = 60.0;

/// Line colors for up to six curves.
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

fn fmt(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// A "nice" tick step so axes carry 4–8 labels.
fn tick_step(span: f64) -> f64 {
    let raw = span / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.5 {
        2.0
    } else if norm < 7.5 {
        5.0
    } else {
        10.0
    };
    step * mag
}

/// Render a latency-vs-throughput figure for several sweeps.
///
/// `latency_ceiling_us` clips the y axis; points above it are drawn at
/// the ceiling (the curve visibly saturates).
///
/// # Panics
///
/// Panics if `sweeps` is empty or any sweep has no points.
pub fn latency_vs_throughput_svg(
    sweeps: &[SweepResult],
    title: &str,
    latency_ceiling_us: f64,
) -> String {
    assert!(!sweeps.is_empty(), "nothing to plot");
    let max_x = sweeps
        .iter()
        .flat_map(|s| s.points.iter())
        .map(|p| p.report.throughput_flits_per_us())
        .fold(0.0f64, f64::max)
        .max(1.0);
    let max_y = latency_ceiling_us;
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let sx = |x: f64| MARGIN_L + (x / max_x) * plot_w;
    let sy = |y: f64| MARGIN_T + plot_h - (y.min(max_y) / max_y) * plot_h;

    let mut svg = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">
<style>text {{ font-family: sans-serif; font-size: 12px; }} .title {{ font-size: 15px; font-weight: bold; }}</style>
<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>
<text class="title" x="{}" y="24" text-anchor="middle">{}</text>
"#,
        MARGIN_L + plot_w / 2.0,
        escape(title),
    );

    // Axes.
    svg.push_str(&format!(
        r#"<line x1="{l}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/>
<line x1="{l}" y1="{t}" x2="{l}" y2="{b}" stroke="black"/>
"#,
        l = MARGIN_L,
        r = MARGIN_L + plot_w,
        t = MARGIN_T,
        b = MARGIN_T + plot_h,
    ));

    // Ticks and grid.
    let xstep = tick_step(max_x);
    let mut x = 0.0;
    while x <= max_x + 1e-9 {
        let px = sx(x);
        svg.push_str(&format!(
            r##"<line x1="{px}" y1="{t}" x2="{px}" y2="{b}" stroke="#dddddd"/>
<text x="{px}" y="{ly}" text-anchor="middle">{}</text>
"##,
            fmt(x),
            t = MARGIN_T,
            b = MARGIN_T + plot_h,
            ly = MARGIN_T + plot_h + 18.0,
        ));
        x += xstep;
    }
    let ystep = tick_step(max_y);
    let mut y = 0.0;
    while y <= max_y + 1e-9 {
        let py = sy(y);
        svg.push_str(&format!(
            r##"<line x1="{l}" y1="{py}" x2="{r}" y2="{py}" stroke="#dddddd"/>
<text x="{lx}" y="{ty}" text-anchor="end">{}</text>
"##,
            fmt(y),
            l = MARGIN_L,
            r = MARGIN_L + plot_w,
            lx = MARGIN_L - 8.0,
            ty = py + 4.0,
        ));
        y += ystep;
    }

    // Axis labels.
    svg.push_str(&format!(
        r#"<text x="{}" y="{}" text-anchor="middle">delivered throughput (flits/us)</text>
<text x="18" y="{}" text-anchor="middle" transform="rotate(-90 18 {})">average latency (us)</text>
"#,
        MARGIN_L + plot_w / 2.0,
        MARGIN_T + plot_h + 42.0,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
    ));

    // Curves and legend.
    for (i, sweep) in sweeps.iter().enumerate() {
        assert!(!sweep.points.is_empty(), "empty sweep {}", sweep.algorithm);
        let color = COLORS[i % COLORS.len()];
        let points: Vec<String> = sweep
            .points
            .iter()
            .map(|p| {
                format!(
                    "{:.1},{:.1}",
                    sx(p.report.throughput_flits_per_us()),
                    sy(p.report.avg_latency_us())
                )
            })
            .collect();
        svg.push_str(&format!(
            r#"<polyline fill="none" stroke="{color}" stroke-width="2" points="{}"/>
"#,
            points.join(" ")
        ));
        for p in &sweep.points {
            svg.push_str(&format!(
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>
"#,
                sx(p.report.throughput_flits_per_us()),
                sy(p.report.avg_latency_us())
            ));
        }
        let ly = MARGIN_T + 14.0 + i as f64 * 18.0;
        svg.push_str(&format!(
            r#"<line x1="{x0}" y1="{ly}" x2="{x1}" y2="{ly}" stroke="{color}" stroke-width="2"/>
<text x="{tx}" y="{ty}">{}</text>
"#,
            escape(&sweep.algorithm),
            x0 = WIDTH - MARGIN_R + 10.0,
            x1 = WIDTH - MARGIN_R + 34.0,
            tx = WIDTH - MARGIN_R + 40.0,
            ty = ly + 4.0,
        ));
    }

    svg.push_str("</svg>\n");
    svg
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::load_sweep;
    use crate::Scale;
    use turnroute_routing::mesh2d;
    use turnroute_topology::Mesh;
    use turnroute_traffic::Uniform;

    #[test]
    fn svg_renders_curves_and_legend() {
        let mesh = Mesh::new_2d(4, 4);
        let uniform = Uniform::new();
        let sweeps = vec![
            load_sweep(
                &mesh,
                &mesh2d::xy(),
                &uniform,
                &[0.02, 0.08],
                Scale::Quick,
                1,
            ),
            load_sweep(
                &mesh,
                &mesh2d::west_first(turnroute_routing::RoutingMode::Minimal),
                &uniform,
                &[0.02, 0.08],
                Scale::Quick,
                1,
            ),
        ];
        let svg = latency_vs_throughput_svg(&sweeps, "Test & Figure", 50.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("west-first"));
        assert!(svg.contains("Test &amp; Figure"));
        assert!(svg.contains("average latency"));
    }

    #[test]
    fn tick_steps_are_nice() {
        assert_eq!(tick_step(10.0), 2.0);
        assert_eq!(tick_step(100.0), 20.0);
        assert_eq!(tick_step(7.0), 1.0);
        assert_eq!(tick_step(2500.0), 500.0);
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn rejects_empty_input() {
        let _ = latency_vs_throughput_svg(&[], "x", 10.0);
    }
}
