//! Graceful-degradation experiments: delivered fraction and latency vs
//! failed-link percentage.
//!
//! For each link-failure fraction, a deterministic random fault pattern
//! ([`turnroute_sim::FaultPlan::random_links`]) is injected from cycle 0
//! and every routing algorithm runs the same pattern under the same
//! traffic, with a packet lifetime and one retry so blocked packets are
//! counted as dropped instead of hanging the run. The curves show how
//! each turn-model algorithm degrades: how much of the offered traffic
//! still arrives, and what the survivors pay in latency.

use crate::Scale;
use turnroute_model::RoutingFunction;
use turnroute_sim::{FaultPlan, Sim, SimConfig, SimReport};
use turnroute_topology::Topology;
use turnroute_traffic::TrafficPattern;

/// One point of a fault sweep: one fault pattern, one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPoint {
    /// Fraction of network links failed (0.0 = healthy baseline).
    pub fraction: f64,
    /// Number of links the pattern actually failed.
    pub failed_links: usize,
    /// The run's results.
    pub report: SimReport,
}

/// Degradation curve of one routing algorithm over increasing failure
/// fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCurve {
    /// Routing algorithm name.
    pub algorithm: String,
    /// Traffic pattern name.
    pub pattern: String,
    /// Points in increasing failure-fraction order.
    pub points: Vec<FaultPoint>,
}

/// The default failure-fraction grid.
pub fn default_fractions() -> Vec<f64> {
    vec![0.0, 0.02, 0.05, 0.10, 0.15, 0.20]
}

/// The moderate offered load the degradation runs use, far below
/// saturation so delivered-fraction loss is attributable to faults, not
/// congestion.
pub const FAULT_SWEEP_RATE: f64 = 0.05;

/// Packet lifetime for a given scale (must exceed the healthy p99 by a
/// wide margin so it only fires on genuinely stuck packets).
fn packet_timeout(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 2_000,
        Scale::Full => 4_000,
    }
}

/// Run one algorithm over the failure-fraction grid. Points are
/// independent simulations on parallel threads. The fault pattern at a
/// given fraction depends only on `(seed, fraction)`, so every algorithm
/// faces identical failures.
pub fn fault_sweep<T, R, P>(
    topo: &T,
    routing: &R,
    pattern: &P,
    fractions: &[f64],
    scale: Scale,
    seed: u64,
) -> FaultCurve
where
    T: Topology + Sync,
    R: RoutingFunction + Sync + ?Sized,
    P: TrafficPattern + Sync,
{
    let (warmup, measure, drain) = scale.cycles();
    let points = std::thread::scope(|scope| {
        let handles: Vec<_> = fractions
            .iter()
            .map(|&fraction| {
                scope.spawn(move || {
                    let fault_seed = seed.wrapping_add((fraction * 10_000.0).round() as u64);
                    let plan = FaultPlan::random_links(topo, fraction, 0, fault_seed);
                    let failed_links = plan.len();
                    let cfg = SimConfig::builder()
                        .injection_rate(FAULT_SWEEP_RATE)
                        .warmup_cycles(warmup)
                        .measure_cycles(measure)
                        .drain_cycles(drain)
                        .packet_timeout(packet_timeout(scale))
                        .max_retries(1)
                        .seed(seed)
                        .fault_plan(plan)
                        .build();
                    let report = Sim::new(topo, &routing, pattern, cfg).run();
                    FaultPoint {
                        fraction,
                        failed_links,
                        report,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fault sweep worker panicked"))
            .collect()
    });
    FaultCurve {
        algorithm: routing.name().to_string(),
        pattern: pattern.name().to_string(),
        points,
    }
}

/// Render several curves as CSV
/// (`algorithm,pattern,fraction,failed_links,...`).
pub fn to_csv(curves: &[FaultCurve]) -> String {
    let mut out = String::from(
        "algorithm,pattern,failed_fraction,failed_links,delivered_fraction,\
         p50_latency_us,p99_latency_us,dropped,unroutable,retries,termination\n",
    );
    for c in curves {
        for p in &c.points {
            let r = &p.report;
            out.push_str(&format!(
                "{},{},{:.3},{},{:.4},{:.2},{:.2},{},{},{},{}\n",
                c.algorithm,
                c.pattern,
                p.fraction,
                p.failed_links,
                r.delivered_fraction(),
                r.p50_latency_cycles / turnroute_sim::CYCLES_PER_MICROSEC,
                r.p99_latency_cycles / turnroute_sim::CYCLES_PER_MICROSEC,
                r.dropped_packets,
                r.unroutable_packets,
                r.retries,
                r.termination,
            ));
        }
    }
    out
}

/// Render several curves as one JSON document.
pub fn to_json(curves: &[FaultCurve], title: &str) -> String {
    let mut out = format!(
        "{{\"title\":{},\"injection_rate\":{FAULT_SWEEP_RATE},\"curves\":[",
        turnroute_sim::obs::json::string(title)
    );
    for (i, c) in curves.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"algorithm\":{},\"pattern\":{},\"points\":[",
            turnroute_sim::obs::json::string(&c.algorithm),
            turnroute_sim::obs::json::string(&c.pattern)
        ));
        for (j, p) in c.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let r = &p.report;
            out.push_str(&format!(
                "{{\"failed_fraction\":{},\"failed_links\":{},\
                 \"delivered_fraction\":{:.4},\"p50_latency_cycles\":{},\
                 \"p99_latency_cycles\":{},\"dropped\":{},\"unroutable\":{},\
                 \"retries\":{},\"termination\":{}}}",
                p.fraction,
                p.failed_links,
                r.delivered_fraction(),
                r.p50_latency_cycles,
                r.p99_latency_cycles,
                r.dropped_packets,
                r.unroutable_packets,
                r.retries,
                turnroute_sim::obs::json::string(&r.termination.to_string()),
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Render the curves as a markdown report.
pub fn to_markdown(curves: &[FaultCurve], title: &str) -> String {
    let mut out = format!(
        "## {title}\n\nOffered load {FAULT_SWEEP_RATE} flits/node/cycle; identical random \
         link-fault patterns per fraction across algorithms; packets are dropped after \
         their lifetime expires (one retry).\n\n"
    );
    for c in curves {
        out.push_str(&format!("### {}\n\n", c.algorithm));
        out.push_str(
            "| failed links | delivered frac | p50 (us) | p99 (us) | dropped | unroutable | retries | end |\n\
             |---:|---:|---:|---:|---:|---:|---:|:---|\n",
        );
        for p in &c.points {
            let r = &p.report;
            out.push_str(&format!(
                "| {:.0}% ({}) | {:.3} | {:.1} | {:.1} | {} | {} | {} | {} |\n",
                p.fraction * 100.0,
                p.failed_links,
                r.delivered_fraction(),
                r.p50_latency_cycles / turnroute_sim::CYCLES_PER_MICROSEC,
                r.p99_latency_cycles / turnroute_sim::CYCLES_PER_MICROSEC,
                r.dropped_packets,
                r.unroutable_packets,
                r.retries,
                r.termination,
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_routing::{mesh2d, RoutingMode};
    use turnroute_topology::Mesh;
    use turnroute_traffic::Uniform;

    #[test]
    fn healthy_point_delivers_everything() {
        let mesh = Mesh::new_2d(4, 4);
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let uniform = Uniform::new();
        let curve = fault_sweep(&mesh, &wf, &uniform, &[0.0], Scale::Quick, 1);
        let p = &curve.points[0];
        assert_eq!(p.failed_links, 0);
        assert!(p.report.delivered_fraction() > 0.99, "{}", p.report);
        assert_eq!(p.report.dropped_packets, 0);
    }

    #[test]
    fn faulty_points_degrade_but_never_deadlock() {
        let mesh = Mesh::new_2d(6, 6);
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let uniform = Uniform::new();
        let curve = fault_sweep(&mesh, &wf, &uniform, &[0.05, 0.15], Scale::Quick, 3);
        for p in &curve.points {
            assert!(p.failed_links > 0);
            assert_eq!(
                p.report.termination,
                turnroute_sim::RunTermination::Completed,
                "fraction {} must degrade gracefully, not deadlock",
                p.fraction
            );
            assert!(p.report.delivered_packets > 0, "{}", p.report);
        }
    }

    #[test]
    fn renderers_produce_consistent_output() {
        let mesh = Mesh::new_2d(4, 4);
        let xy = mesh2d::xy();
        let uniform = Uniform::new();
        let curve = fault_sweep(&mesh, &xy, &uniform, &[0.0, 0.1], Scale::Quick, 1);
        let csv = to_csv(std::slice::from_ref(&curve));
        assert_eq!(csv.lines().count(), 3, "{csv}");
        assert!(csv.starts_with("algorithm,"));
        let md = to_markdown(std::slice::from_ref(&curve), "Fault tolerance");
        assert!(md.contains("## Fault tolerance"));
        assert!(md.contains("| failed links |"));
        let json = to_json(&[curve], "Fault tolerance");
        assert!(turnroute_sim::obs::json::validate(&json), "{json}");
        assert!(json.contains("\"delivered_fraction\""));
    }

    #[test]
    fn sweep_grid_matches_the_turnprove_matrix() {
        // turnprove reproves exactly the fault plans these degradation
        // curves run; the two fraction grids must never drift apart.
        assert_eq!(
            default_fractions(),
            turnroute_analysis::prove::SWEEP_FRACTIONS.to_vec()
        );
    }

    #[test]
    fn sweep_artifacts_are_byte_identical_across_reruns() {
        let mesh = Mesh::new_2d(4, 4);
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let uniform = Uniform::new();
        let artifacts = || {
            let curve = fault_sweep(&mesh, &wf, &uniform, &[0.0, 0.05], Scale::Quick, 1);
            (
                to_csv(std::slice::from_ref(&curve)),
                to_json(std::slice::from_ref(&curve), "t"),
            )
        };
        assert_eq!(
            artifacts(),
            artifacts(),
            "results/ artifacts must rerun clean"
        );
    }
}
