//! Section 3.4: degree of adaptiveness of the 2D partially adaptive
//! algorithms, validated by exhaustive path counting.

use turnroute_model::adaptiveness::{
    adaptiveness_summary, count_minimal_paths, s_fully_adaptive, s_negative_first, s_north_last,
    s_west_first, AdaptivenessSummary,
};
use turnroute_routing::{mesh2d, RoutingFunction, RoutingMode};
use turnroute_topology::{Mesh, NodeId, Topology};

/// Results for one algorithm on one mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivenessRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Aggregate summary over all pairs.
    pub summary: AdaptivenessSummary,
    /// Whether the closed-form `S_p` matched exhaustive counting on every
    /// pair.
    pub formula_verified: bool,
}

/// Compute the Section 3.4 table for an `m × m` mesh: mean `S_p/S_f`,
/// single-path fraction, and closed-form validation.
pub fn analyze(m: u16) -> Vec<AdaptivenessRow> {
    let mesh = Mesh::new_2d(m, m);
    type ClosedForm = fn(&turnroute_topology::Coord, &turnroute_topology::Coord) -> u128;
    let algorithms: Vec<(Box<dyn RoutingFunction>, ClosedForm)> = vec![
        (
            Box::new(mesh2d::west_first(RoutingMode::Minimal)),
            s_west_first as ClosedForm,
        ),
        (
            Box::new(mesh2d::north_last(RoutingMode::Minimal)),
            s_north_last as ClosedForm,
        ),
        (
            Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
            s_negative_first as ClosedForm,
        ),
    ];
    algorithms
        .into_iter()
        .map(|(alg, closed_form)| {
            let mut verified = true;
            for s in 0..mesh.num_nodes() {
                for d in 0..mesh.num_nodes() {
                    if s == d {
                        continue;
                    }
                    let (s, d) = (NodeId(s as u32), NodeId(d as u32));
                    let counted = count_minimal_paths(&mesh, &alg, s, d);
                    let formula = closed_form(&mesh.coord_of(s), &mesh.coord_of(d));
                    if counted != formula {
                        verified = false;
                    }
                }
            }
            let summary = adaptiveness_summary(&mesh, &alg, |s, d| {
                s_fully_adaptive(&mesh.coord_of(s), &mesh.coord_of(d))
            });
            AdaptivenessRow {
                algorithm: alg.name().to_string(),
                summary,
                formula_verified: verified,
            }
        })
        .collect()
}

/// Render the Section 3.4 analysis as markdown.
pub fn render(m: u16) -> String {
    let mut out = format!(
        "# Section 3.4: degree of adaptiveness on a {m}x{m} mesh\n\n\
         | algorithm | mean S_p/S_f | pairs with S_p = 1 | closed form |\n\
         |---|---:|---:|:---:|\n"
    );
    for row in analyze(m) {
        out.push_str(&format!(
            "| {} | {:.3} | {:.1}% | {} |\n",
            row.algorithm,
            row.summary.mean_ratio,
            row.summary.single_path_fraction * 100.0,
            if row.formula_verified {
                "verified"
            } else {
                "MISMATCH"
            },
        ));
    }
    out.push_str(
        "\nThe paper: averaged across all pairs, S_p/S_f > 1/2, and S_p = 1 for\n\
         at least half of the source-destination pairs.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_verified_and_ratio_above_half_8x8() {
        for row in analyze(8) {
            assert!(row.formula_verified, "{} formula mismatch", row.algorithm);
            // The paper's claim: mean S_p/S_f > 1/2.
            assert!(
                row.summary.mean_ratio > 0.5,
                "{}: mean ratio {}",
                row.algorithm,
                row.summary.mean_ratio
            );
            // And S_p = 1 for at least half of the (off-axis) pairs.
            assert!(
                row.summary.single_path_fraction >= 0.5,
                "{}: single-path fraction {}",
                row.algorithm,
                row.summary.single_path_fraction
            );
        }
    }

    #[test]
    fn render_has_three_rows() {
        let s = render(4);
        assert_eq!(s.matches("verified").count(), 3, "{s}");
        assert!(!s.contains("MISMATCH"), "{s}");
    }
}
