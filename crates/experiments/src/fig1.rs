//! Figure 1: a wormhole deadlock involving four routers and four packets.
//!
//! The paper's opening figure shows four packets, each trying to turn
//! left, ending in a circular wait. We realize it in the simulator: a
//! deliberately unrestricted "always turn left" routing function sends
//! four two-hop packets around a square of routers; each acquires its
//! first channel and waits forever for the next. The same scenario under
//! west-first routing delivers all four packets.

use turnroute_model::{RoutingFunction, TurnSet};
use turnroute_sim::{Sim, SimConfig, SimReport, Telemetry};
use turnroute_topology::{DirSet, Direction, Mesh, NodeId, Topology};
use turnroute_traffic::{Permutation, TrafficPattern};

/// Deterministic left-turning routing: of the productive directions, pick
/// the one whose *left* neighbor direction is also productive (so the
/// packet's turn will be a left turn), falling back to the single
/// productive direction. Allows every turn — **not deadlock free**, by
/// design; it exists to reproduce Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TurnLeft;

impl TurnLeft {
    /// Create the left-turning demo router.
    pub fn new() -> TurnLeft {
        TurnLeft
    }

    /// The direction 90 degrees to the left of `d` in the 2D plane
    /// (east→north→west→south→east).
    fn left_of(d: Direction) -> Direction {
        match d {
            Direction::EAST => Direction::NORTH,
            Direction::NORTH => Direction::WEST,
            Direction::WEST => Direction::SOUTH,
            Direction::SOUTH => Direction::EAST,
            _ => unreachable!("2D directions only"),
        }
    }
}

impl RoutingFunction for TurnLeft {
    fn name(&self) -> &str {
        "turn-left (deadlocks)"
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        let productive = topo.productive_dirs(current, dest);
        if productive.len() <= 1 {
            return productive;
        }
        // Two productive directions: continue straight if possible so the
        // remaining correction is a (left) turn; otherwise pick the
        // direction whose left is the other productive one.
        if let Some(arr) = arrived {
            if productive.contains(arr) {
                return DirSet::single(arr);
            }
        }
        for d in productive.iter() {
            if productive.contains(Self::left_of(d)) {
                return DirSet::single(d);
            }
        }
        DirSet::single(productive.iter().next().expect("nonempty"))
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn turn_set(&self, num_dims: usize) -> Option<TurnSet> {
        Some(TurnSet::all_ninety(num_dims))
    }
}

/// The four-packet Figure 1 scenario on a 2×2 mesh: each packet crosses
/// one side of the square and turns left onto the next.
fn scenario(mesh: &Mesh) -> Vec<(NodeId, NodeId)> {
    let sw = mesh.node_at_coords(&[0, 0]);
    let se = mesh.node_at_coords(&[1, 0]);
    let ne = mesh.node_at_coords(&[1, 1]);
    let nw = mesh.node_at_coords(&[0, 1]);
    vec![(sw, ne), (se, nw), (ne, sw), (nw, se)]
}

/// Run the Figure 1 scenario with the given routing function; packets are
/// long enough that each worm holds its first channel while requesting the
/// second.
pub fn run_scenario(routing: &dyn RoutingFunction) -> SimReport {
    let mesh = Mesh::new_2d(2, 2);
    let pattern = Permutation::new("fig1", (0..4).map(NodeId).collect());
    run_scenario_on(&mesh, routing, &pattern)
}

fn scenario_cfg() -> SimConfig {
    SimConfig::builder()
        .injection_rate(0.0)
        .warmup_cycles(0)
        .measure_cycles(400)
        .drain_cycles(0)
        .deadlock_threshold(100)
        .build()
}

fn run_scenario_on(
    mesh: &Mesh,
    routing: &dyn RoutingFunction,
    pattern: &dyn TrafficPattern,
) -> SimReport {
    let mut sim = Sim::new(mesh, routing, pattern, scenario_cfg());
    for (src, dst) in scenario(mesh) {
        sim.inject_packet(src, dst, 8);
    }
    sim.run()
}

/// Run the Figure 1 scenario with full telemetry attached: the report
/// plus the collectors, including the ring trace that captures the
/// deadlock snapshot when `routing` deadlocks.
pub fn run_scenario_traced(routing: &dyn RoutingFunction) -> (SimReport, Telemetry) {
    let mesh = Mesh::new_2d(2, 2);
    let pattern = Permutation::new("fig1", (0..4).map(NodeId).collect());
    let mut sim = Sim::with_observer(
        &mesh,
        routing,
        &pattern,
        scenario_cfg(),
        Telemetry::new(&mesh),
    );
    for (src, dst) in scenario(&mesh) {
        sim.inject_packet(src, dst, 8);
    }
    let report = sim.run();
    (report, sim.into_observer())
}

/// The JSONL postmortem of the deadlocking Figure 1 run: the trace
/// events leading into the deadlock, then the frozen waits-for graph
/// (one JSON object per line; the `exp fig1 --trace` output).
pub fn postmortem() -> String {
    let (report, telemetry) = run_scenario_traced(&TurnLeft::new());
    assert!(report.deadlocked, "Figure 1 scenario must deadlock");
    telemetry.trace.postmortem_jsonl()
}

/// Render the Figure 1 experiment: the same four packets deadlock under
/// unrestricted left-turning but complete under west-first.
pub fn render() -> String {
    let deadlock = run_scenario(&TurnLeft::new());
    let wf = turnroute_routing::mesh2d::west_first(turnroute_routing::RoutingMode::Minimal);
    let safe = run_scenario(&wf);
    format!(
        "# Figure 1: wormhole deadlock from unrestricted left turns\n\n\
         Four 8-flit packets cross the four sides of a 2x2 mesh, each turning left.\n\n\
         | routing | outcome | packets delivered |\n|---|---|---:|\n\
         | turn-left (all turns allowed) | {} | {}/4 |\n\
         | west-first (turn model) | {} | {}/4 |\n",
        if deadlock.deadlocked {
            "DEADLOCK"
        } else {
            "completed"
        },
        deadlock.delivered_packets,
        if safe.deadlocked {
            "DEADLOCK"
        } else {
            "completed"
        },
        safe.delivered_packets,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_model::Cdg;
    use turnroute_routing::{mesh2d, RoutingMode};

    #[test]
    fn unrestricted_left_turns_deadlock() {
        let report = run_scenario(&TurnLeft::new());
        assert!(report.deadlocked, "Figure 1 scenario must deadlock");
        assert_eq!(report.delivered_packets, 0);
    }

    #[test]
    fn west_first_completes_the_same_scenario() {
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let report = run_scenario(&wf);
        assert!(!report.deadlocked);
        assert_eq!(report.delivered_packets, 4);
    }

    #[test]
    fn negative_first_completes_the_same_scenario() {
        let nf = mesh2d::negative_first(RoutingMode::Minimal);
        let report = run_scenario(&nf);
        assert!(!report.deadlocked);
        assert_eq!(report.delivered_packets, 4);
    }

    #[test]
    fn turn_left_cdg_is_cyclic() {
        // The demo router's own dependency graph confirms the hazard.
        let mesh = Mesh::new_2d(2, 2);
        assert!(Cdg::from_routing(&mesh, &TurnLeft::new())
            .find_cycle()
            .is_some());
    }

    #[test]
    fn postmortem_is_parseable_jsonl_with_a_cycle() {
        let dump = postmortem();
        let lines: Vec<&str> = dump.lines().collect();
        assert!(lines.len() > 2, "{dump}");
        for line in &lines {
            assert!(turnroute_sim::obs::json::validate(line), "bad line: {line}");
        }
        assert!(lines[0].contains("\"deadlocked\":true"), "{}", lines[0]);
        let snap_line = lines.last().unwrap();
        assert!(snap_line.contains("deadlock_snapshot"), "{snap_line}");
        // The captured snapshot names an actual circular wait.
        let (_, telemetry) = run_scenario_traced(&TurnLeft::new());
        let snap = telemetry.trace.snapshot().expect("snapshot captured");
        assert!(!snap.cycle_channels().is_empty(), "circular wait found");
    }

    #[test]
    fn render_mentions_both_outcomes() {
        let s = render();
        assert!(s.contains("DEADLOCK"), "{s}");
        assert!(s.contains("4/4"), "{s}");
    }
}
