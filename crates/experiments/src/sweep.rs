//! Load sweeps: latency-vs-throughput curves and sustainable throughput.

use crate::Scale;
use turnroute_model::RoutingFunction;
use turnroute_sim::obs::{ChannelHeatmap, ChannelLayout, StreamingHistogram};
use turnroute_sim::{Sim, SimConfig, SimReport};
use turnroute_topology::Topology;
use turnroute_traffic::TrafficPattern;

/// Telemetry captured at one sweep point by [`load_sweep_instrumented`].
#[derive(Debug, Clone, PartialEq)]
pub struct PointMetrics {
    /// Per-channel load and stall attribution for the whole run.
    pub heatmap: ChannelHeatmap,
    /// Latency histogram of delivered window packets.
    pub latency: StreamingHistogram,
}

impl PointMetrics {
    /// The point's telemetry as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"channels\":{},\"latency_hist\":{}}}",
            self.heatmap.to_json(),
            self.latency.to_json()
        )
    }
}

/// One point of a load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered load this run was configured with, flits per node per
    /// cycle.
    pub injection_rate: f64,
    /// The run's results.
    pub report: SimReport,
    /// Per-channel/latency telemetry; `None` unless the sweep ran
    /// through [`load_sweep_instrumented`].
    pub metrics: Option<PointMetrics>,
}

impl SweepPoint {
    /// Whether the load was sustainable — the paper's criterion is that
    /// "the number of packets queued at their source processors is small
    /// and bounded". Over a multi-thousand-cycle window, accepted ≈
    /// offered (delivered fraction near 1) is exactly boundedness; a
    /// loose queue-length guard catches pathological cases where packets
    /// pile up at a few sources while the fraction stays high.
    pub fn is_sustainable(&self) -> bool {
        !self.report.deadlocked
            && self.report.delivered_fraction() >= 0.98
            && self.report.max_queue_len <= 32
    }
}

/// A full latency-vs-throughput curve for one routing algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Routing algorithm name.
    pub algorithm: String,
    /// Traffic pattern name.
    pub pattern: String,
    /// Points in increasing offered-load order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The highest delivered throughput (flits/µs) among sustainable
    /// points — the paper's *maximum sustainable throughput*.
    pub fn sustainable_throughput(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.is_sustainable())
            .map(|p| p.report.throughput_flits_per_us())
            .fold(0.0, f64::max)
    }

    /// Render the curve as CSV (`rate,offered,throughput,latency_us,...`).
    /// The latency quantile ladder is complete (p50/p90/p99) and the
    /// final four columns carry the turnscope blame decomposition as
    /// mean cycles per delivered packet.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "algorithm,pattern,injection_rate,offered_flits_per_us,throughput_flits_per_us,\
             avg_latency_us,p50_latency_us,p90_latency_us,p99_latency_us,avg_hops,\
             delivered_fraction,max_queue,sustainable,blame_queue_cycles,blame_blocked_cycles,\
             blame_service_cycles,blame_misroute_cycles\n",
        );
        for p in &self.points {
            let r = &p.report;
            let us = turnroute_sim::CYCLES_PER_MICROSEC;
            out.push_str(&format!(
                "{},{},{:.4},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.3},{:.4},{},{},\
                 {:.2},{:.2},{:.2},{:.2}\n",
                self.algorithm,
                self.pattern,
                p.injection_rate,
                r.offered_flits_per_us(),
                r.throughput_flits_per_us(),
                r.avg_latency_us(),
                r.p50_latency_cycles / us,
                r.p90_latency_cycles / us,
                r.p99_latency_cycles / us,
                r.avg_hops,
                r.delivered_fraction(),
                r.max_queue_len,
                p.is_sustainable(),
                r.blame.avg_queue_cycles(r.delivered_packets),
                r.blame.avg_blocked_cycles(r.delivered_packets),
                r.blame.avg_service_cycles(r.delivered_packets),
                r.blame.avg_misroute_cycles(r.delivered_packets),
            ));
        }
        out
    }
}

/// The default offered-load grid for 256-node sweeps, in flits per node
/// per cycle.
pub fn default_rates() -> Vec<f64> {
    vec![
        0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.14, 0.18, 0.22, 0.26, 0.30, 0.36, 0.44, 0.55, 0.70,
        0.85, 1.0,
    ]
}

/// Run a load sweep of `routing` on `topo` under `pattern`. The sweep
/// points are independent simulations and run on parallel threads.
pub fn load_sweep<T, R, P>(
    topo: &T,
    routing: &R,
    pattern: &P,
    rates: &[f64],
    scale: Scale,
    seed: u64,
) -> SweepResult
where
    T: Topology + Sync,
    R: RoutingFunction + Sync,
    P: TrafficPattern + Sync,
{
    let (warmup, measure, drain) = scale.cycles();
    let points = std::thread::scope(|scope| {
        let handles: Vec<_> = rates
            .iter()
            .map(|&rate| {
                scope.spawn(move || {
                    let cfg = SimConfig::builder()
                        .injection_rate(rate)
                        .warmup_cycles(warmup)
                        .measure_cycles(measure)
                        .drain_cycles(drain)
                        .seed(seed)
                        .build();
                    let report = Sim::new(topo, routing, pattern, cfg).run();
                    SweepPoint {
                        injection_rate: rate,
                        report,
                        metrics: None,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    SweepResult {
        algorithm: routing.name().to_string(),
        pattern: pattern.name().to_string(),
        points,
    }
}

/// Like [`load_sweep`], but each point runs with a
/// [`ChannelHeatmap`] observer attached and fills
/// [`SweepPoint::metrics`] with the per-channel load/stall heatmap and
/// the latency histogram — the data behind `exp --metrics-out`.
pub fn load_sweep_instrumented<T, R, P>(
    topo: &T,
    routing: &R,
    pattern: &P,
    rates: &[f64],
    scale: Scale,
    seed: u64,
) -> SweepResult
where
    T: Topology + Sync,
    R: RoutingFunction + Sync,
    P: TrafficPattern + Sync,
{
    let (warmup, measure, drain) = scale.cycles();
    let points = std::thread::scope(|scope| {
        let handles: Vec<_> = rates
            .iter()
            .map(|&rate| {
                scope.spawn(move || {
                    let cfg = SimConfig::builder()
                        .injection_rate(rate)
                        .warmup_cycles(warmup)
                        .measure_cycles(measure)
                        .drain_cycles(drain)
                        .seed(seed)
                        .build();
                    let heatmap = ChannelHeatmap::new(ChannelLayout::for_topology(topo));
                    let mut sim = Sim::with_observer(topo, routing, pattern, cfg, heatmap);
                    let report = sim.run();
                    let latency = sim.latency_histogram();
                    SweepPoint {
                        injection_rate: rate,
                        report,
                        metrics: Some(PointMetrics {
                            heatmap: sim.into_observer(),
                            latency,
                        }),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    SweepResult {
        algorithm: routing.name().to_string(),
        pattern: pattern.name().to_string(),
        points,
    }
}

/// Render instrumented sweeps as one JSON document: per sweep, per
/// point, the report's headline numbers plus the channel heatmap and
/// latency histogram (for points carrying metrics).
pub fn metrics_json(sweeps: &[SweepResult], title: &str) -> String {
    let mut out = format!(
        "{{\"title\":{},\"sweeps\":[",
        turnroute_sim::obs::json::string(title)
    );
    for (i, s) in sweeps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"algorithm\":{},\"pattern\":{},\"points\":[",
            turnroute_sim::obs::json::string(&s.algorithm),
            turnroute_sim::obs::json::string(&s.pattern)
        ));
        for (j, p) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let r = &p.report;
            out.push_str(&format!(
                "{{\"injection_rate\":{},\"throughput_flits_per_us\":{:.3},\
                 \"avg_latency_cycles\":{:.3},\"p50_latency_cycles\":{},\
                 \"p90_latency_cycles\":{},\"p99_latency_cycles\":{},\
                 \"max_latency_cycles\":{},\"total_stall_cycles\":{},\
                 \"blame\":{{\"queue_cycles\":{},\"blocked_cycles\":{},\
                 \"service_cycles\":{},\"misroute_cycles\":{}}},\"deadlocked\":{}",
                p.injection_rate,
                r.throughput_flits_per_us(),
                r.avg_latency_cycles,
                r.p50_latency_cycles,
                r.p90_latency_cycles,
                r.p99_latency_cycles,
                r.max_latency_cycles,
                r.total_stall_cycles,
                r.blame.queue_cycles,
                r.blame.blocked_cycles,
                r.blame.service_cycles,
                r.blame.misroute_cycles,
                r.deadlocked,
            ));
            if let Some(m) = &p.metrics {
                out.push_str(&format!(
                    ",\"channels\":{},\"latency_hist\":{}",
                    m.heatmap.to_json(),
                    m.latency.to_json()
                ));
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Render several sweeps as an aligned markdown table of
/// (throughput, latency) pairs — the data behind a paper figure.
pub fn to_markdown(sweeps: &[SweepResult], title: &str) -> String {
    let mut out = format!("## {title}\n\n");
    for s in sweeps {
        out.push_str(&format!(
            "### {} — sustainable throughput {:.1} flits/us\n\n",
            s.algorithm,
            s.sustainable_throughput()
        ));
        out.push_str(
            "| offered (flits/us) | delivered (flits/us) | latency (us) | delivered frac | sustainable |\n\
             |---:|---:|---:|---:|:---|\n",
        );
        for p in &s.points {
            let r = &p.report;
            out.push_str(&format!(
                "| {:.1} | {:.1} | {:.1} | {:.3} | {} |\n",
                r.offered_flits_per_us(),
                r.throughput_flits_per_us(),
                r.avg_latency_us(),
                r.delivered_fraction(),
                if p.is_sustainable() { "yes" } else { "no" },
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_routing::mesh2d;
    use turnroute_topology::Mesh;
    use turnroute_traffic::Uniform;

    #[test]
    fn sweep_produces_monotone_offered_load() {
        let mesh = Mesh::new_2d(4, 4);
        let xy = mesh2d::xy();
        let uniform = Uniform::new();
        let result = load_sweep(&mesh, &xy, &uniform, &[0.02, 0.08], Scale::Quick, 1);
        assert_eq!(result.points.len(), 2);
        assert!(
            result.points[1].report.offered_flits_per_us()
                > result.points[0].report.offered_flits_per_us()
        );
        assert_eq!(result.algorithm, "xy");
        assert_eq!(result.pattern, "uniform");
    }

    #[test]
    fn low_load_is_sustainable() {
        let mesh = Mesh::new_2d(4, 4);
        let xy = mesh2d::xy();
        let uniform = Uniform::new();
        let result = load_sweep(&mesh, &xy, &uniform, &[0.02], Scale::Quick, 1);
        assert!(result.points[0].is_sustainable());
        assert!(result.sustainable_throughput() > 0.0);
    }

    #[test]
    fn instrumented_sweep_carries_valid_metrics() {
        let mesh = Mesh::new_2d(4, 4);
        let xy = mesh2d::xy();
        let uniform = Uniform::new();
        let result = load_sweep_instrumented(&mesh, &xy, &uniform, &[0.05], Scale::Quick, 1);
        let m = result.points[0].metrics.as_ref().expect("metrics captured");
        assert!(m.heatmap.total_load() > 0, "channels saw traffic");
        assert!(m.latency.count() > 0, "latencies recorded");
        let json = metrics_json(&[result], "test sweep");
        assert!(turnroute_sim::obs::json::validate(&json), "{json}");
        assert!(json.contains("\"channels\""));
        assert!(json.contains("\"latency_hist\""));
        assert!(json.contains("\"p90_latency_cycles\""));
        assert!(json.contains("\"blame\":{\"queue_cycles\":"));
    }

    #[test]
    fn csv_and_markdown_render() {
        let mesh = Mesh::new_2d(4, 4);
        let xy = mesh2d::xy();
        let uniform = Uniform::new();
        let result = load_sweep(&mesh, &xy, &uniform, &[0.02], Scale::Quick, 1);
        let csv = result.to_csv();
        assert!(csv.lines().count() == 2, "{csv}");
        assert!(csv.starts_with("algorithm,"));
        let header = csv.lines().next().unwrap();
        // The full quantile ladder and the blame decomposition ride
        // every sweep CSV.
        assert!(header.contains(",p50_latency_us,p90_latency_us,p99_latency_us,"));
        assert!(header.ends_with(
            ",blame_queue_cycles,blame_blocked_cycles,blame_service_cycles,blame_misroute_cycles"
        ));
        assert_eq!(
            header.split(',').count(),
            csv.lines().nth(1).unwrap().split(',').count(),
            "every row carries every column"
        );
        let md = to_markdown(&[result], "Test");
        assert!(md.contains("## Test"));
        assert!(md.contains("| offered"));
    }
}
