//! Buffer-depth ablation.
//!
//! The paper's routers buffer a single flit per input channel — one of
//! wormhole routing's attractions ("just enough buffer space to store a
//! few flits"). This ablation measures what deeper buffers buy: latency
//! and throughput of xy and negative-first on the 16×16 mesh at depths
//! 1, 2, 4, and 8 (depth → packet size approaches virtual cut-through).

use crate::Scale;
use turnroute_model::RoutingFunction;
use turnroute_routing::{mesh2d, RoutingMode};
use turnroute_sim::{Sim, SimConfig, SimReport};
use turnroute_topology::Mesh;
use turnroute_traffic::{MeshTranspose, TrafficPattern, Uniform};

/// One ablation cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferCell {
    /// Algorithm simulated.
    pub algorithm: String,
    /// Pattern simulated.
    pub pattern: String,
    /// Buffer depth in flits.
    pub depth: u32,
    /// Results at the probe load.
    pub report: SimReport,
}

/// Run the depth grid at a mid-to-high load.
pub fn measure(scale: Scale, seed: u64) -> Vec<BufferCell> {
    let mesh = Mesh::new_2d(16, 16);
    let (warmup, measure, drain) = scale.cycles();
    let algorithms: Vec<Box<dyn RoutingFunction>> = vec![
        Box::new(mesh2d::xy()),
        Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
    ];
    let patterns: Vec<Box<dyn TrafficPattern>> =
        vec![Box::new(Uniform::new()), Box::new(MeshTranspose::new())];
    let mut out = Vec::new();
    for alg in &algorithms {
        for pattern in &patterns {
            for depth in [1u32, 2, 4, 8] {
                let cfg = SimConfig::builder()
                    .injection_rate(0.14)
                    .warmup_cycles(warmup)
                    .measure_cycles(measure)
                    .drain_cycles(drain)
                    .buffer_depth(depth)
                    .seed(seed)
                    .build();
                let report = Sim::new(&mesh, alg, pattern, cfg).run();
                out.push(BufferCell {
                    algorithm: alg.name().to_string(),
                    pattern: pattern.name().to_string(),
                    depth,
                    report,
                });
            }
        }
    }
    out
}

/// Render the ablation as markdown.
pub fn render(scale: Scale, seed: u64) -> String {
    let mut out = String::from(
        "# Buffer-depth ablation (16x16 mesh, 0.14 flits/node/cycle)\n\n\
         The paper's routers buffer one flit per input channel; deeper\n\
         buffers trade silicon for latency.\n\n\
         | algorithm | pattern | depth | latency (us) | delivered (flits/us) | delivered frac |\n\
         |---|---|---:|---:|---:|---:|\n",
    );
    for cell in measure(scale, seed) {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.1} | {:.3} |\n",
            cell.algorithm,
            cell.pattern,
            cell.depth,
            cell.report.avg_latency_us(),
            cell.report.throughput_flits_per_us(),
            cell.report.delivered_fraction(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_16_cells_without_deadlock() {
        let cells = measure(Scale::Quick, 6);
        assert_eq!(cells.len(), 16);
        for cell in &cells {
            assert!(
                !cell.report.deadlocked,
                "{}/{}/depth{} deadlocked",
                cell.algorithm, cell.pattern, cell.depth
            );
        }
        // Deeper buffers never hurt delivered throughput materially.
        for w in cells.chunks(4) {
            let d1 = w[0].report.throughput_flits_per_us();
            let d8 = w[3].report.throughput_flits_per_us();
            assert!(
                d8 >= d1 * 0.9,
                "depth 8 ({d8:.1}) much worse than depth 1 ({d1:.1})"
            );
        }
    }
}
