//! The Section 5 table: p-cube routing choices along a 10-cube path from
//! source 1011010100 to destination 0010111001.

use turnroute_model::adaptiveness::{count_minimal_paths, s_pcube};
use turnroute_routing::hypercube::{minimal_register, nonminimal_register, p_cube};
use turnroute_routing::RoutingMode;
use turnroute_topology::{Hypercube, NodeId};

/// One row of the table: the current address, the number of minimal
/// choices, extra nonminimal choices, and the dimension taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableRow {
    /// Address of the node transmitting the message.
    pub address: u32,
    /// Number of output-channel choices under minimal p-cube routing.
    pub choices: u32,
    /// Additional choices available with nonminimal routing.
    pub extra_nonminimal: u32,
    /// The dimension taken in the paper's example path (`None` for the
    /// destination row).
    pub dimension_taken: Option<u32>,
}

/// The paper's source, destination, and the dimensions its example path
/// takes, in order.
pub const SRC: u32 = 0b1011010100;
/// Destination address of the Section 5 example.
pub const DST: u32 = 0b0010111001;
/// Dimensions taken along the example path, in order.
pub const DIMS_TAKEN: [u32; 6] = [2, 9, 6, 5, 0, 3];

/// Regenerate the table by walking the example path and computing the
/// choice counts from the routing registers of Figures 11 and 12.
pub fn table() -> Vec<TableRow> {
    let n = 10;
    let mut rows = Vec::with_capacity(DIMS_TAKEN.len() + 1);
    let mut current = SRC;
    for &dim in &DIMS_TAKEN {
        let minimal = minimal_register(current, DST, n);
        let phase1 = current & !DST != 0;
        let with_nonminimal = if phase1 {
            nonminimal_register(current, DST, n, true)
        } else {
            minimal
        };
        rows.push(TableRow {
            address: current,
            choices: minimal.count_ones(),
            extra_nonminimal: with_nonminimal.count_ones() - minimal.count_ones(),
            dimension_taken: Some(dim),
        });
        current ^= 1 << dim;
    }
    assert_eq!(current, DST, "example path must land on the destination");
    rows.push(TableRow {
        address: DST,
        choices: 0,
        extra_nonminimal: 0,
        dimension_taken: None,
    });
    rows
}

/// Render the table as markdown, together with the path-count summary
/// (`36 shortest paths for p-cube vs 720 fully adaptive vs 1 for e-cube`).
pub fn render() -> String {
    let mut out = String::from(
        "# Section 5 table: p-cube routing in a binary 10-cube\n\n\
         Source 1011010100 -> destination 0010111001 (h = 6, h1 = 3, h0 = 3).\n\n\
         | address | choices | dimension taken | comment |\n|---|---|---|---|\n",
    );
    for (i, row) in table().iter().enumerate() {
        let comment = match row.dimension_taken {
            None => "destination".to_string(),
            Some(_) if i == 0 => "source".to_string(),
            Some(_) => {
                if row.address & !DST & ((1 << 10) - 1) != 0 {
                    "phase 1".to_string()
                } else {
                    "phase 2".to_string()
                }
            }
        };
        let choices = if row.extra_nonminimal > 0 {
            format!("{}(+{})", row.choices, row.extra_nonminimal)
        } else if row.dimension_taken.is_some() {
            row.choices.to_string()
        } else {
            String::new()
        };
        out.push_str(&format!(
            "| {:010b} | {} | {} | {} |\n",
            row.address,
            choices,
            row.dimension_taken.map_or(String::new(), |d| d.to_string()),
            comment,
        ));
    }

    let cube = Hypercube::new(10);
    let pc = p_cube(10, RoutingMode::Minimal);
    let counted = count_minimal_paths(&cube, &pc, NodeId(SRC), NodeId(DST));
    out.push_str(&format!(
        "\nShortest paths: p-cube {} (= 3!*3! = {}), fully adaptive 6! = 720, e-cube 1.\n",
        counted,
        s_pcube(3, 3),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_rows() {
        // The paper's choice column: 3(+2), 2(+2), 1(+2), 3, 2, 1.
        let rows = table();
        let choices: Vec<(u32, u32)> = rows
            .iter()
            .take(6)
            .map(|r| (r.choices, r.extra_nonminimal))
            .collect();
        assert_eq!(
            choices,
            vec![(3, 2), (2, 2), (1, 2), (3, 0), (2, 0), (1, 0)]
        );
        // Addresses along the walk match the paper.
        let addrs: Vec<u32> = rows.iter().map(|r| r.address).collect();
        assert_eq!(
            addrs,
            vec![
                0b1011010100,
                0b1011010000,
                0b0011010000,
                0b0010010000,
                0b0010110000,
                0b0010110001,
                0b0010111001,
            ]
        );
    }

    #[test]
    fn render_counts_36_paths() {
        let s = render();
        assert!(s.contains("p-cube 36"), "{s}");
        assert!(s.contains("3(+2)"), "{s}");
    }
}
