//! Synthesis study: what the certificate-driven VC synthesizer buys.
//!
//! `turnsynth` (the `synth` module of `turnroute-analysis`) inverts
//! every cyclic verdict in the proof matrix into an escape/adaptive
//! virtual-channel assignment, re-proven and validated by the
//! independent checker. This experiment renders that run as a
//! paper-style table — configuration, input size, witness length,
//! feedback cut, escape-class size, synthesized dependency count,
//! verdict — plus the live cross-validations where the unsplit relation
//! deadlocks and the synthesized one delivers every packet.

use crate::Scale;
use turnroute_analysis::synth::{run, SynthOptions};

/// Run the synthesis matrix and render `results/synth.md`. Returns the
/// markdown and whether every synthesis was certified and every
/// cross-check agreed.
pub fn study(scale: Scale) -> (String, bool) {
    let report = run(&SynthOptions {
        quick: scale == Scale::Quick,
        inject_bad: false,
    });
    let passed = report.passed();

    let mut md = String::from("# turnsynth: escape/adaptive synthesis study\n\n");
    md.push_str(
        "Every *cyclic* configuration of the proof matrix, mechanically \
         split into an adaptive class (the input relation minus an \
         inclusion-minimal feedback cut) and a minimal escape class \
         (up*/down* over the induced node graph) — the generalization of \
         the hand-coded double-y construction — then lowered back to a \
         channel graph, re-proven acyclic, and validated by the \
         independent checker.\n\n",
    );
    md.push_str(&format!(
        "- cyclic inputs synthesized: **{}**, all certified: **{}**\n",
        report.entries.len(),
        if report.entries.iter().all(|e| e.ok()) {
            "yes"
        } else {
            "NO"
        },
    ));
    let cut_total: usize = report.entries.iter().map(|e| e.feedback_cut).sum();
    let escape_total: usize = report.entries.iter().map(|e| e.escape_channels).sum();
    md.push_str(&format!(
        "- feedback edges cut: **{cut_total}** across the matrix; escape channels \
         synthesized: **{escape_total}**\n",
    ));
    md.push_str(&format!(
        "- simulator cross-validations: **{}**, all agreeing (unsplit deadlocks, \
         synthesized delivers 100%): **{}**\n\n",
        report.cross_checks.len(),
        if report.cross_checks.iter().all(|x| x.ok()) {
            "yes"
        } else {
            "NO"
        },
    ));

    md.push_str(
        "| configuration | kind | channels | deps | witness | cut | escape | synth deps | verdict |\n\
         | --- | --- | ---: | ---: | ---: | ---: | ---: | ---: | --- |\n",
    );
    for e in &report.entries {
        md.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            e.config,
            e.kind,
            e.input_channels,
            e.input_deps,
            e.witness_len,
            e.feedback_cut,
            e.escape_channels,
            e.synth_deps,
            if e.ok() { "certified" } else { "FAILED" },
        ));
    }

    md.push_str(
        "\n## Live cross-validation\n\n\
         Seeded saturating runs over a fixed seed sweep: the unsplit \
         relation must deadlock for at least one seed, the synthesized \
         relation must deliver every injected packet on every seed.\n\n\
         | configuration | engine | unsplit | synthesized | ok |\n\
         | --- | --- | --- | --- | --- |\n",
    );
    for x in &report.cross_checks {
        md.push_str(&format!(
            "| {} | {} | {} | {}/{} delivered{} | {} |\n",
            x.config,
            x.engine,
            if x.unsplit_deadlocked {
                "deadlocked"
            } else {
                "no deadlock"
            },
            x.synth_delivered,
            x.synth_injected,
            if x.synth_deadlocked {
                " (deadlocked)"
            } else {
                ""
            },
            if x.ok() { "yes" } else { "NO" },
        ));
    }
    md.push_str(&format!(
        "\nOverall: **{}**.\n",
        if passed { "PASS" } else { "FAIL" }
    ));
    (md, passed)
}
