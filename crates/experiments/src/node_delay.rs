//! Node-delay ablation — Section 7's caveat, quantified.
//!
//! "Adaptive routing can require more complex control logic for route
//! selection than does nonadaptive routing, and this may increase node
//! delay." This ablation charges the adaptive router extra route-selection
//! cycles per hop while the xy baseline keeps a one-cycle decision, and
//! asks when the adaptivity advantage survives.

use crate::Scale;
use turnroute_model::RoutingFunction;
use turnroute_routing::{mesh2d, RoutingMode};
use turnroute_sim::{Sim, SimConfig, SimReport};
use turnroute_topology::Mesh;
use turnroute_traffic::{MeshTranspose, TrafficPattern, Uniform};

/// One ablation cell.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayCell {
    /// Algorithm simulated.
    pub algorithm: String,
    /// Pattern simulated.
    pub pattern: String,
    /// Extra route-selection cycles charged per router.
    pub delay: u64,
    /// Results at the probe load.
    pub report: SimReport,
}

fn run(
    alg: &dyn RoutingFunction,
    pattern: &dyn TrafficPattern,
    delay: u64,
    rate: f64,
    scale: Scale,
    seed: u64,
) -> SimReport {
    let mesh = Mesh::new_2d(16, 16);
    let (warmup, measure, drain) = scale.cycles();
    let cfg = SimConfig::builder()
        .injection_rate(rate)
        .warmup_cycles(warmup)
        .measure_cycles(measure)
        .drain_cycles(drain)
        .routing_delay(delay)
        .seed(seed)
        .build();
    Sim::new(&mesh, alg, pattern, cfg).run()
}

/// Measure the grid: xy at delay 0 (the cheap router) vs negative-first
/// at delays 0–2, under uniform and transpose traffic at the given
/// offered load (flits/node/cycle).
pub fn measure(scale: Scale, seed: u64, rate: f64) -> Vec<DelayCell> {
    let xy = mesh2d::xy();
    let nf = mesh2d::negative_first(RoutingMode::Minimal);
    let patterns: [(&str, Box<dyn TrafficPattern>); 2] = [
        ("uniform", Box::new(Uniform::new())),
        ("matrix-transpose", Box::new(MeshTranspose::new())),
    ];
    let mut out = Vec::new();
    for (pname, pattern) in &patterns {
        out.push(DelayCell {
            algorithm: "xy".into(),
            pattern: (*pname).into(),
            delay: 0,
            report: run(&xy, pattern, 0, rate, scale, seed),
        });
        for delay in [0u64, 1, 2] {
            out.push(DelayCell {
                algorithm: "negative-first".into(),
                pattern: (*pname).into(),
                delay,
                report: run(&nf, pattern, delay, rate, scale, seed),
            });
        }
    }
    out
}

/// Render the ablation as markdown.
pub fn render(scale: Scale, seed: u64) -> String {
    let mut out = String::from(
        "# Node-delay ablation (Section 7's caveat, 16x16 mesh, 0.10 flits/node/cycle)\n\n\
         The adaptive router pays extra route-selection cycles per hop; the\n\
         xy baseline keeps a one-cycle decision.\n\n\
         | algorithm | pattern | extra delay | latency (us) | delivered (flits/us) | delivered frac |\n\
         |---|---|---:|---:|---:|---:|\n",
    );
    for cell in measure(scale, seed, 0.10) {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.1} | {:.3} |\n",
            cell.algorithm,
            cell.pattern,
            cell.delay,
            cell.report.avg_latency_us(),
            cell.report.throughput_flits_per_us(),
            cell.report.delivered_fraction(),
        ));
    }
    out.push_str(
        "\nOn its favorable workload (transpose) the adaptive algorithm\n\
         tolerates extra node delay; on uniform traffic, where it has no\n\
         advantage to spend, every extra cycle is pure loss — exactly the\n\
         design tension Section 7 describes.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_costs_latency_monotonically() {
        // Probe below saturation (0.04 flits/node/cycle) where latency is
        // stable; at saturation the average is dominated by queueing
        // noise.
        let cells = measure(Scale::Quick, 15, 0.04);
        assert_eq!(cells.len(), 8);
        for c in &cells {
            assert!(
                !c.report.deadlocked,
                "{}/{} deadlocked",
                c.algorithm, c.delay
            );
        }
        let nf_uniform: Vec<&DelayCell> = cells
            .iter()
            .filter(|c| c.algorithm == "negative-first" && c.pattern == "uniform")
            .collect();
        assert_eq!(nf_uniform.len(), 3);
        assert!(
            nf_uniform[0].report.avg_latency_cycles < nf_uniform[2].report.avg_latency_cycles,
            "latency must grow with node delay: {} vs {}",
            nf_uniform[0].report.avg_latency_cycles,
            nf_uniform[2].report.avg_latency_cycles
        );
        // Roughly one extra cycle per hop per unit of delay.
        let per_hop = (nf_uniform[2].report.avg_latency_cycles
            - nf_uniform[0].report.avg_latency_cycles)
            / (2.0 * nf_uniform[0].report.avg_hops);
        assert!(
            per_hop > 0.5 && per_hop < 2.5,
            "extra latency should track hops: {per_hop:.2} cycles/hop/delay"
        );
    }

    #[test]
    fn adaptive_advantage_survives_one_cycle_of_delay_on_transpose() {
        let cells = measure(Scale::Quick, 16, 0.10);
        let xy = cells
            .iter()
            .find(|c| c.algorithm == "xy" && c.pattern == "matrix-transpose")
            .unwrap();
        let nf_d1 = cells
            .iter()
            .find(|c| {
                c.algorithm == "negative-first" && c.pattern == "matrix-transpose" && c.delay == 1
            })
            .unwrap();
        assert!(
            nf_d1.report.avg_latency_cycles < xy.report.avg_latency_cycles * 1.5,
            "NF with +1 delay ({:.0} cy) should stay competitive with xy ({:.0} cy)",
            nf_d1.report.avg_latency_cycles,
            xy.report.avg_latency_cycles
        );
    }
}
