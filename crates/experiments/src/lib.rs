//! Experiment harness: regenerates every figure and table of the
//! turn-model paper.
//!
//! Each paper artifact has a module here and a subcommand on the `exp`
//! binary (`cargo run --release --bin exp -- <subcommand>`):
//!
//! | Artifact | Module / subcommand |
//! |----------|---------------------|
//! | Figure 1 (wormhole deadlock) | [`fig1`] / `fig1` |
//! | Figures 2–4 + §3 census | [`census`] / `turn-census` |
//! | Figures 5, 9, 10 (example paths) | [`paths`] / `example-paths` |
//! | Figures 6–8, Theorems 2 & 5 | [`numbering_exp`] / `numbering` |
//! | Theorems 1 & 6 | [`theorems`] / `theorems` |
//! | §3.4 adaptiveness | [`adaptiveness_exp`] / `adaptiveness-2d` |
//! | §5 p-cube table | [`pcube_table`] / `pcube-table` |
//! | Figures 13–16 | [`figures`] / `fig13` … `fig16` |
//! | §6 scalar claims | [`claims`] / `claims` |
//!
//! Beyond the paper's own artifacts, three ablations extend the
//! evaluation: [`linkload`] (`link-load`) quantifies the channel-load
//! imbalance the paper explains qualitatively, [`policies`]
//! (`policy-ablation`) runs the input/output selection study the paper
//! defers to its companion paper, and [`nonminimal_exp`] (`nonminimal`)
//! measures the cost/benefit of misrouting with and without faults. A
//! fourth, [`vc_ablation`] (`vc-ablation`), compares the no-extra-channel
//! algorithms against the fully adaptive double-y virtual-channel scheme.
//! [`faults`] (`faults`) sweeps random link-failure fractions and plots
//! each algorithm's graceful degradation: delivered fraction and latency
//! quantiles vs percentage of failed links. [`chaos`] (`chaos`) soaks
//! both engines under seeded MTTF/MTTR fault storms with the
//! certificate-gated healing engine and the invariant sanitizer attached.
//! [`scope`] (`scope`) is the turnscope saturation-approach study: a load
//! ramp with blame decomposition, a planted collapse the early-warning
//! detectors must call ahead of time, a clean baseline they must stay
//! silent on, and a chaos-storm telemetry determinism check. [`mc_exp`]
//! (`mc`) renders the turncheck state-space census: how many reachable
//! engine states each exhaustive deadlock-freedom certification covered,
//! and which unsafe sets were refuted with replayed counterexamples.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adaptiveness_exp;
pub mod buffers;
pub mod census;
pub mod chaos;
pub mod claims;
pub mod faults;
pub mod fig1;
pub mod figures;
pub mod linkload;
pub mod mc_exp;
pub mod node_delay;
pub mod nonminimal_exp;
pub mod numbering_exp;
pub mod paths;
pub mod pcube_table;
pub mod plot;
pub mod policies;
pub mod scope;
pub mod sweep;
pub mod synth_exp;
pub mod theorems;
pub mod vc_ablation;

/// How much simulation to run: `Full` matches the paper-scale protocol,
/// `Quick` shrinks windows for CI and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short windows: seconds per figure, noisier curves.
    Quick,
    /// Paper-scale windows: minutes per figure, smooth curves.
    Full,
}

impl Scale {
    /// (warmup, measure, drain) cycles for this scale.
    pub fn cycles(self) -> (u64, u64, u64) {
        match self {
            Scale::Quick => (1_000, 4_000, 4_000),
            Scale::Full => (5_000, 20_000, 20_000),
        }
    }
}
