//! Figures 13–16: latency vs throughput sweeps on the paper's two
//! 256-node networks.

use crate::sweep::{default_rates, load_sweep, load_sweep_instrumented, to_markdown, SweepResult};
use crate::Scale;
use turnroute_routing::{hypercube, mesh2d, ndmesh, RoutingFunction, RoutingMode};
use turnroute_topology::{Hypercube, Mesh};
use turnroute_traffic::{HypercubeTranspose, MeshTranspose, ReverseFlip, TrafficPattern, Uniform};

/// The algorithm set simulated on the 16×16 mesh: the xy baseline and the
/// three partially adaptive algorithms of Section 3.
fn mesh_algorithms() -> Vec<Box<dyn RoutingFunction + Sync>> {
    vec![
        Box::new(mesh2d::xy()),
        Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        Box::new(mesh2d::north_last(RoutingMode::Minimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
    ]
}

/// The algorithm set simulated on the binary 8-cube: the e-cube baseline,
/// p-cube (negative-first), and the two Section 4.1 analogs.
fn cube_algorithms() -> Vec<Box<dyn RoutingFunction + Sync>> {
    vec![
        Box::new(hypercube::e_cube(8)),
        Box::new(hypercube::p_cube(8, RoutingMode::Minimal)),
        Box::new(ndmesh::all_but_one_negative_first(8, RoutingMode::Minimal)),
        Box::new(ndmesh::all_but_one_positive_last(8, RoutingMode::Minimal)),
    ]
}

fn run_mesh<P: TrafficPattern + Sync>(
    pattern: &P,
    scale: Scale,
    seed: u64,
    instrument: bool,
) -> Vec<SweepResult> {
    let mesh = Mesh::new_2d(16, 16);
    mesh_algorithms()
        .iter()
        .map(|alg| {
            if instrument {
                load_sweep_instrumented(&mesh, alg, pattern, &default_rates(), scale, seed)
            } else {
                load_sweep(&mesh, alg, pattern, &default_rates(), scale, seed)
            }
        })
        .collect()
}

fn run_cube<P: TrafficPattern + Sync>(
    pattern: &P,
    scale: Scale,
    seed: u64,
    instrument: bool,
) -> Vec<SweepResult> {
    let cube = Hypercube::new(8);
    cube_algorithms()
        .iter()
        .map(|alg| {
            if instrument {
                load_sweep_instrumented(&cube, alg, pattern, &default_rates(), scale, seed)
            } else {
                load_sweep(&cube, alg, pattern, &default_rates(), scale, seed)
            }
        })
        .collect()
}

/// Figure 13: uniform traffic in a 16×16 mesh. `instrument` fills each
/// point's [`crate::sweep::SweepPoint::metrics`].
pub fn fig13(scale: Scale, seed: u64, instrument: bool) -> Vec<SweepResult> {
    run_mesh(&Uniform::new(), scale, seed, instrument)
}

/// Figure 14: matrix-transpose traffic in a 16×16 mesh.
pub fn fig14(scale: Scale, seed: u64, instrument: bool) -> Vec<SweepResult> {
    run_mesh(&MeshTranspose::new(), scale, seed, instrument)
}

/// Figure 15: matrix-transpose traffic in a binary 8-cube.
pub fn fig15(scale: Scale, seed: u64, instrument: bool) -> Vec<SweepResult> {
    run_cube(&HypercubeTranspose::new(), scale, seed, instrument)
}

/// Figure 16: reverse-flip traffic in a binary 8-cube.
pub fn fig16(scale: Scale, seed: u64, instrument: bool) -> Vec<SweepResult> {
    run_cube(&ReverseFlip::new(), scale, seed, instrument)
}

/// Render one figure's sweeps as markdown.
pub fn render(figure: u8, scale: Scale, seed: u64) -> String {
    let (sweeps, title) = match figure {
        13 => (
            fig13(scale, seed, false),
            "Figure 13: uniform traffic, 16x16 mesh",
        ),
        14 => (
            fig14(scale, seed, false),
            "Figure 14: matrix-transpose traffic, 16x16 mesh",
        ),
        15 => (
            fig15(scale, seed, false),
            "Figure 15: matrix-transpose traffic, binary 8-cube",
        ),
        16 => (
            fig16(scale, seed, false),
            "Figure 16: reverse-flip traffic, binary 8-cube",
        ),
        other => panic!("no figure {other}; expected 13..=16"),
    };
    to_markdown(&sweeps, title)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::load_sweep;
    use turnroute_topology::Topology;

    /// A cut-down fig14: at a load well past the nonadaptive saturation
    /// point, negative-first sustains transpose traffic that xy cannot.
    #[test]
    fn transpose_favors_adaptive_routing() {
        let mesh = Mesh::new_2d(16, 16);
        let pattern = MeshTranspose::new();
        let rates = [0.16];
        let xy = load_sweep(&mesh, &mesh2d::xy(), &pattern, &rates, Scale::Quick, 5);
        let nf = load_sweep(
            &mesh,
            &mesh2d::negative_first(RoutingMode::Minimal),
            &pattern,
            &rates,
            Scale::Quick,
            5,
        );
        let xy_thru = xy.points[0].report.throughput_flits_per_us();
        let nf_thru = nf.points[0].report.throughput_flits_per_us();
        assert!(
            nf_thru > xy_thru * 1.3,
            "negative-first {nf_thru:.1} should clearly beat xy {xy_thru:.1} on transpose"
        );
    }

    #[test]
    fn algorithm_sets_cover_the_paper() {
        let mesh_algs = mesh_algorithms();
        let mesh_names: Vec<&str> = mesh_algs.iter().map(|a| a.name()).collect();
        assert_eq!(
            mesh_names,
            vec!["xy", "west-first", "north-last", "negative-first"]
        );
        let cube_algs = cube_algorithms();
        let cube_names: Vec<&str> = cube_algs.iter().map(|a| a.name()).collect();
        assert_eq!(
            cube_names,
            vec![
                "e-cube",
                "p-cube",
                "all-but-one-negative-first",
                "all-but-one-positive-last"
            ]
        );
    }

    #[test]
    fn all_mesh_algorithms_deliver_uniform_traffic_quickly() {
        let mesh = Mesh::new_2d(16, 16);
        assert_eq!(mesh.num_nodes(), 256);
        for alg in mesh_algorithms() {
            let sweep = load_sweep(&mesh, &alg, &Uniform::new(), &[0.02], Scale::Quick, 2);
            let report = &sweep.points[0].report;
            assert!(!report.deadlocked, "{} deadlocked", alg.name());
            assert!(
                report.delivered_fraction() > 0.9,
                "{} delivered {}",
                alg.name(),
                report.delivered_fraction()
            );
        }
    }
}
