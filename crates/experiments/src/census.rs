//! Figures 2–4 and the Section 3 census: of the 16 ways to prohibit one
//! turn from each abstract cycle of a 2D mesh, 12 prevent deadlock and
//! three are unique up to symmetry.

use turnroute_model::cycle::{abstract_cycles, one_turn_per_cycle_census, two_turn_census};
use turnroute_model::symmetry::equivalence_classes;
use turnroute_model::{presets, TurnSet};
use turnroute_topology::Mesh;

/// Render the abstract cycles of the 2D plane (Figure 2) and the census
/// table over two-turn prohibitions (Figures 3–4, Section 3).
pub fn render() -> String {
    let mut out = String::from("# Figures 2-4: turns, cycles, and the two-turn census\n\n");
    out.push_str("## Abstract cycles in a 2D mesh (Figure 2)\n\n");
    for c in abstract_cycles(2) {
        out.push_str(&format!("* {c}\n"));
    }

    let mesh = Mesh::new_2d(4, 4);
    let census = two_turn_census(&mesh);
    out.push_str(&format!(
        "\n## Census of two-turn prohibitions (Section 3)\n\n\
         {} candidate prohibitions, {} deadlock free (paper: 16 and 12).\n\n\
         | prohibited turns | deadlock free |\n|---|:---:|\n",
        census.total(),
        census.deadlock_free()
    ));
    for (set, free) in &census.entries {
        let turns: Vec<String> = set
            .prohibited_ninety()
            .iter()
            .map(|t| t.to_string())
            .collect();
        out.push_str(&format!(
            "| {} | {} |\n",
            turns.join(", "),
            if *free { "yes" } else { "**no**" }
        ));
    }

    out.push_str(
        "\n## The three unique algorithms (up to symmetry)\n\n\
         | algorithm | prohibited turns |\n|---|---|\n",
    );
    for (name, set) in [
        ("west-first", presets::west_first_turns()),
        ("north-last", presets::north_last_turns()),
        ("negative-first", presets::negative_first_turns(2)),
    ] {
        let turns: Vec<String> = set
            .prohibited_ninety()
            .iter()
            .map(|t| t.to_string())
            .collect();
        out.push_str(&format!("| {name} | {} |\n", turns.join(", ")));
    }
    out
}

/// The 3D generalization the paper never ran: all `4^6 = 4096` ways of
/// prohibiting one turn per abstract cycle of a 3D mesh, CDG-checked.
pub fn render_3d() -> String {
    let mesh = Mesh::new_cubic(3, 3);
    let census = one_turn_per_cycle_census(&mesh);
    let free = census.deadlock_free();
    let mut out = format!(
        "# One-turn-per-cycle census, 3D mesh (extension)\n\n\
         Theorem 1's minimum for n = 3 is 6 prohibited turns, one from each\n\
         of the 6 abstract cycles: 4^6 = {} candidates. CDG-checked on a\n\
         3x3x3 mesh, **{} are deadlock free ({:.1}%)** — breaking every\n\
         plane's cycles is necessary but far from sufficient once complex\n\
         cross-plane cycles (Figure 4's generalization) are accounted for.\n\n",
        census.total(),
        free,
        100.0 * free as f64 / census.total() as f64,
    );
    let nf = presets::negative_first_turns(3);
    let nf_safe = census.entries.iter().any(|(set, ok)| *ok && *set == nf);
    out.push_str(&format!(
        "The negative-first prohibition is {}among the deadlock-free candidates.\n\n",
        if nf_safe { "" } else { "NOT " }
    ));

    // The 3D analog of "three are unique if symmetry is taken into
    // account": group the survivors under the 48-element hyperoctahedral
    // group.
    let safe: Vec<TurnSet> = census
        .entries
        .iter()
        .filter(|(_, ok)| *ok)
        .map(|(s, _)| s.clone())
        .collect();
    let classes = equivalence_classes(&safe);
    out.push_str(&format!(
        "Under the 48 mesh symmetries, the {} survivors form **{} distinct\n\
         routing algorithms** (the paper's \"three unique\" generalized):\n\n\
         | class | members | representative prohibitions |\n|---:|---:|---|\n",
        safe.len(),
        classes.len()
    ));
    for (i, class) in classes.iter().enumerate() {
        let rep: Vec<String> = safe[class[0]]
            .prohibited_ninety()
            .iter()
            .map(|t| t.to_string())
            .collect();
        out.push_str(&format!("| {i} | {} | {} |\n", class.len(), rep.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_3d_reports_counts() {
        let s = render_3d();
        assert!(s.contains("4096 candidates"), "{s}");
        assert!(s.contains("is among the deadlock-free"), "{s}");
    }

    #[test]
    fn render_reports_12_of_16() {
        let s = render();
        assert!(
            s.contains("16 candidate prohibitions, 12 deadlock free"),
            "{s}"
        );
        assert!(s.contains("west-first"), "{s}");
        // Exactly four census rows marked deadlocking.
        assert_eq!(s.matches("**no**").count(), 4, "{s}");
    }
}
