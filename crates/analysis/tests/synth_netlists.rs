//! Property test: every cyclic random netlist gets a certified synthesis.
//!
//! Seeded random connected netlists (a random spanning tree plus extra
//! links) are lowered unrestricted; whenever the prover refutes one, the
//! synthesizer must produce an escape/adaptive assignment that the
//! *independent checker* certifies acyclic and fully connected, with no
//! escape dead ends — and routing over the escape class alone must still
//! connect every ordered pair.

use turnroute_analysis::synth::{escape_dead_end, synthesize};
use turnroute_analysis::{check, extract, prove, GraphSpec, Verdict};
use turnroute_rng::{Rng, SeedableRng, StdRng};

/// A random connected undirected link list: a uniform random spanning
/// tree (each node n > 0 attaches to a random earlier node), plus
/// `extra` random non-duplicate links.
fn random_netlist(rng: &mut StdRng, n: u32, extra: usize) -> Vec<(u32, u32)> {
    let mut links: Vec<(u32, u32)> = (1..n)
        .map(|v| {
            let parent = rng.gen_range(0..v);
            (parent, v)
        })
        .collect();
    let mut attempts = 0;
    while links.len() < (n as usize - 1) + extra && attempts < 100 {
        attempts += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let link = (a.min(b), a.max(b));
        if a != b && !links.contains(&link) {
            links.push(link);
        }
    }
    links.sort_unstable();
    links
}

/// Escape-class-only connectivity: following only escape moves (from
/// injection and escape holding states) must reach every destination.
fn escape_only_connected(spec: &GraphSpec, num_adaptive: usize) -> Result<(), String> {
    let n = spec.num_nodes as usize;
    let is_escape = |c: u32| (c as usize) >= num_adaptive;
    for dest in 0..n {
        for src in 0..n {
            if src == dest {
                continue;
            }
            // BFS over escape channels reachable from src's injection.
            let mut seen = vec![false; spec.channels.len()];
            let mut queue: Vec<u32> = spec.routes[dest][src]
                .iter()
                .copied()
                .filter(|&m| is_escape(m))
                .collect();
            for &c in &queue {
                seen[c as usize] = true;
            }
            let mut reached = false;
            while let Some(c) = queue.pop() {
                if spec.channels[c as usize].dst == dest as u32 {
                    reached = true;
                    break;
                }
                for &m in &spec.routes[dest][n + c as usize] {
                    if is_escape(m) && !seen[m as usize] {
                        seen[m as usize] = true;
                        queue.push(m);
                    }
                }
            }
            if !reached {
                return Err(format!(
                    "{}: escape-only routing cannot take n{src} to n{dest}",
                    spec.name
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn every_cyclic_random_netlist_synthesizes_a_checked_assignment() {
    let mut rng = StdRng::seed_from_u64(0x1234_5EED);
    let mut cyclic_seen = 0;
    for case in 0..20 {
        let n = rng.gen_range(4..=10u32);
        let extra = rng.gen_range(1..=4usize);
        let links = random_netlist(&mut rng, n, extra);
        let spec =
            extract::from_netlist_unrestricted(format!("random-netlist-{case} (n={n})"), n, &links);
        let verdict = prove::prove(&spec).verdict;
        if matches!(verdict, Verdict::Acyclic { .. }) {
            // Trees with few extras can come out acyclic; nothing to do.
            continue;
        }
        cyclic_seen += 1;
        let result = synthesize(&spec).unwrap_or_else(|e| panic!("{e}"));
        let cert = prove::prove(&result.spec);
        assert!(
            cert.verdict.is_acyclic(),
            "{}: synthesized spec still cyclic",
            spec.name
        );
        check::check(&result.spec, &cert).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert!(
            cert.unreachable.is_empty(),
            "{}: synthesis lost connectivity",
            spec.name
        );
        if let Some(err) = escape_dead_end(&result) {
            panic!("{}: {err}", spec.name);
        }
        escape_only_connected(&result.spec, result.num_adaptive).unwrap_or_else(|e| panic!("{e}"));
    }
    assert!(
        cyclic_seen >= 10,
        "only {cyclic_seen} cyclic inputs generated; property vacuous"
    );
}
