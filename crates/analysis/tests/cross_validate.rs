//! Cross-validation: the static CDG verdict on random turn sets must
//! agree with live simulator behavior.
//!
//! For a seeded stream of random turn-set prohibitions, each set is
//! classified statically (CDG acyclicity, coherent connectivity, no
//! adversarial dead ends) and every set the analysis clears is then run
//! through the wormhole simulator under its maximal coherent minimal
//! routing function with the invariant sanitizer attached: the run must
//! complete without tripping the deadlock detector and without a single
//! shadow-model violation. The converse direction is pinned by the
//! unrestricted turn set, whose cyclic CDG manifests as a real detected
//! deadlock under load.

use turnroute_analysis::certificate::Verdict;
use turnroute_analysis::{check, extract, find_dead_end, prove, TurnSetRouting};
use turnroute_model::{Cdg, Turn, TurnSet};
use turnroute_rng::{Rng, SeedableRng, StdRng};
use turnroute_sim::obs::ChannelLayout;
use turnroute_sim::{harness, InvariantObserver, RunTermination, Sim, SimConfig};
use turnroute_topology::Mesh;
use turnroute_traffic::Uniform;
use turnroute_vc::{DoubleYAdaptive, VcSim};

/// Build the turn set prohibiting exactly the turns selected by `mask`
/// over the eight 90-degree turns of the 2D mesh.
fn set_from_mask(mask: u32) -> TurnSet {
    let turns = Turn::all_ninety(2);
    let mut set = TurnSet::all_ninety(2);
    for (i, &t) in turns.iter().enumerate() {
        if mask & (1 << i) != 0 {
            set.prohibit(t);
        }
    }
    set
}

#[test]
fn acyclic_and_connected_sets_never_deadlock_in_simulation() {
    let mesh = Mesh::new_2d(4, 4);
    let mut rng = StdRng::seed_from_u64(0x727a); // stable stream
    let mut sampled = Vec::new();
    while sampled.len() < 48 {
        let mask = rng.gen_range(0u32..256);
        if !sampled.contains(&mask) {
            sampled.push(mask);
        }
    }

    let mut simulated = 0usize;
    for mask in sampled {
        let set = set_from_mask(mask);
        let acyclic = Cdg::from_turn_set(&mesh, &set).is_acyclic();
        let routing = TurnSetRouting::new(format!("mask-{mask:#04x}"), set, &mesh);
        let usable = routing.fully_connected() && find_dead_end(&mesh, &routing).is_none();
        if !(acyclic && usable) {
            continue;
        }
        // The analysis cleared this set: the simulator must agree, under
        // a seed derived from the same stream.
        let cfg = SimConfig::builder()
            .injection_rate(0.15)
            .warmup_cycles(100)
            .measure_cycles(600)
            .drain_cycles(800)
            .deadlock_threshold(5_000)
            .seed(rng.gen_range(0u64..u64::MAX))
            .build();
        let obs = InvariantObserver::new(ChannelLayout::for_topology(&mesh), cfg.buffer_depth);
        let pattern = Uniform::new();
        let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, obs);
        let report = sim.run();
        assert!(
            !report.deadlocked,
            "statically clean set {mask:#04x} deadlocked in simulation"
        );
        assert_eq!(report.termination, RunTermination::Completed, "{mask:#04x}");
        sim.observer().assert_clean();
        assert!(report.delivered_packets > 0, "{mask:#04x}");
        simulated += 1;
    }
    // The property must not pass vacuously: the seeded stream is known
    // to contain several usable deadlock-free sets.
    assert!(
        simulated >= 3,
        "only {simulated} sets qualified; the sample is too thin to mean anything"
    );
}

#[test]
fn the_unrestricted_set_deadlocks_under_load_as_the_cdg_predicts() {
    let mesh = Mesh::new_2d(4, 4);
    let set = TurnSet::all_ninety(2);
    assert!(
        Cdg::from_turn_set(&mesh, &set).find_cycle().is_some(),
        "the unrestricted set must have a cyclic CDG"
    );
    // Its coherent function is plain minimal fully adaptive routing:
    // drive it hard and the predicted dependency cycle becomes a real
    // deadlock, while the sanitizer confirms the stuck flits are all
    // still accounted for.
    let routing = TurnSetRouting::new("unrestricted", set, &mesh);
    let cfg = SimConfig::builder()
        .injection_rate(0.9)
        .warmup_cycles(0)
        .measure_cycles(30_000)
        .drain_cycles(0)
        .deadlock_threshold(200)
        .seed(3)
        .build();
    let obs = InvariantObserver::new(ChannelLayout::for_topology(&mesh), cfg.buffer_depth);
    let pattern = Uniform::new();
    let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, obs);
    let report = sim.run();
    assert!(report.deadlocked, "the cyclic CDG must realize a deadlock");
    let obs = sim.observer();
    obs.assert_clean();
    assert!(
        obs.summary().in_flight_flits > 0,
        "stuck flits are conserved"
    );
}

#[test]
fn static_verdicts_are_deterministic_across_identical_streams() {
    // Same seed, same verdict sequence: the analysis layer must be as
    // reproducible as the simulator it gates.
    let mesh = Mesh::new_2d(4, 4);
    let verdicts = |seed: u64| -> Vec<(u32, bool, bool)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..24)
            .map(|_| {
                let mask = rng.gen_range(0u32..256);
                let set = set_from_mask(mask);
                let acyclic = Cdg::from_turn_set(&mesh, &set).is_acyclic();
                let routing = TurnSetRouting::new("probe", set, &mesh);
                let usable = routing.fully_connected() && find_dead_end(&mesh, &routing).is_none();
                (mask, acyclic, usable)
            })
            .collect()
    };
    assert_eq!(verdicts(41), verdicts(41));
    assert_ne!(
        verdicts(41).iter().map(|v| v.0).collect::<Vec<_>>(),
        verdicts(42).iter().map(|v| v.0).collect::<Vec<_>>(),
        "different seeds must sample different masks"
    );
}

#[test]
fn double_y_certificate_agrees_with_the_vc_simulator() {
    // Forward direction: turnprove certifies the double-y assignment
    // acyclic over *virtual* channels (checker-validated numbering, full
    // connectivity), so the VC engine must survive saturating load.
    let mesh = Mesh::new_2d(4, 4);
    let routing = DoubleYAdaptive::new();
    let spec = extract::from_vc_routing("double-y", &mesh, &routing);
    let cert = prove::prove(&spec);
    check::check(&spec, &cert).expect("double-y certificate must check");
    assert!(cert.verdict.is_acyclic(), "double-y must be acyclic");
    assert!(cert.unreachable.is_empty(), "double-y must be connected");

    let pattern = Uniform::new();
    let cfg = harness::saturating_config(0x2b5, 8_000, 1_000);
    let report = VcSim::new(&mesh, &routing, &pattern, cfg).run();
    assert!(
        !report.deadlocked,
        "certified-acyclic double-y deadlocked under saturation"
    );
    assert!(report.delivered_packets > 0);
}

#[test]
fn planted_cyclic_vc_yields_a_witness_the_checker_accepts() {
    // Converse direction: break the double-y discipline (fully adaptive
    // on both y classes) and the prover must produce a concrete witness
    // cycle — and that witness must itself survive the independent
    // checker, or the negative control proves nothing.
    let mesh = Mesh::new_2d(4, 4);
    let spec = extract::from_vc_routing("planted", &mesh, &extract::PlantedCyclicVc);
    let cert = prove::prove(&spec);
    check::check(&spec, &cert).expect("witness certificate must check");
    let Verdict::Cyclic { cycle } = &cert.verdict else {
        panic!("planted cyclic VC assignment certified acyclic");
    };
    assert!(cycle.len() >= 2, "degenerate witness: {cycle:?}");
    // Every channel on the witness is a doubled y channel or an x channel
    // of the VC graph; rendering must name virtual directions.
    let rendered = spec.render_cycle(cycle);
    assert!(rendered.contains("channel cycle"), "{rendered}");
}
