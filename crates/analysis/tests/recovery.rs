//! Recovery-path coverage: a transient fault forces in-flight packets
//! off their minimal paths, and once the fault heals those already
//! misrouted packets must still reach their destinations under the
//! restored relation — no timeouts, no retries, routing alone.
//!
//! The behavioral claim is cross-checked statically: [`find_dead_end`]
//! must clear both the pristine relation the survivors finish under and
//! the fault-masked relation they were detoured by, so the simulator's
//! recovery is the dynamic face of a proven dead-end-free graph.

use std::collections::HashSet;

use turnroute_analysis::find_dead_end;
use turnroute_model::FaultMasked;
use turnroute_routing::{mesh2d, RoutingMode};
use turnroute_sim::obs::ChannelLayout;
use turnroute_sim::{
    FaultPlan, InvariantObserver, LengthDist, PacketId, Sim, SimConfig, SimObserver,
};
use turnroute_topology::{Direction, Mesh, NodeId, Topology};
use turnroute_traffic::Tornado;
use turnroute_vc::{DoubleYAdaptive, VcSim};

/// Collects which packets were ever misrouted and which were delivered,
/// so the test can assert set inclusion rather than bare counters.
#[derive(Default)]
struct RecoveryTrace {
    misrouted: HashSet<u32>,
    delivered: HashSet<u32>,
    drops: u64,
}

impl SimObserver for RecoveryTrace {
    fn on_misroute(&mut self, _now: u64, packet: PacketId, _at: NodeId, _dir: Direction) {
        self.misrouted.insert(packet.0);
    }

    fn on_deliver(&mut self, _now: u64, packet: PacketId, _latency: u64, _hops: u32) {
        self.delivered.insert(packet.0);
    }

    fn on_drop(&mut self, _now: u64, _packet: PacketId, _unroutable: bool) {
        self.drops += 1;
    }
}

/// A transient east-link fault in the adaptive phase of west-first: the
/// engine detours same-row eastbound packets (misroutes), the fault
/// heals mid-run, and every misrouted packet is still delivered.
#[test]
fn wormhole_misrouted_packets_survive_a_transient_fault() {
    let mesh = Mesh::new_2d(6, 6);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    // Fail a central east link while the measurement window is live.
    let plan = FaultPlan::new().transient_link(NodeId(14), Direction::EAST, 300, 900);
    let cfg = SimConfig::builder()
        .injection_rate(0.25)
        .lengths(LengthDist::Fixed(4))
        .warmup_cycles(0)
        .measure_cycles(2_000)
        .drain_cycles(6_000)
        .packet_timeout(0) // disabled: recovery must come from routing, not retry
        .deadlock_threshold(20_000)
        .seed(0xeca1)
        .fault_plan(plan.clone())
        .build();
    let layout = ChannelLayout::for_topology(&mesh);
    let depth = cfg.buffer_depth;
    let obs = (
        RecoveryTrace::default(),
        InvariantObserver::new(layout, depth),
    );
    let pattern = Tornado::new();
    let mut sim = Sim::with_observer(&mesh, &wf, &pattern, cfg, obs);
    let report = sim.run();
    let (trace, sanitizer) = sim.observer();

    assert!(!report.deadlocked, "transient fault must not wedge the run");
    sanitizer.assert_clean();
    assert!(
        !trace.misrouted.is_empty(),
        "the fault never forced a detour; the scenario is vacuous"
    );
    assert_eq!(trace.drops, 0, "no packet may be dropped to 'recover'");
    assert_eq!(
        report.delivered_packets, report.generated_packets,
        "every generated packet must be delivered after the fault heals"
    );
    for pid in &trace.misrouted {
        assert!(
            trace.delivered.contains(pid),
            "misrouted packet {pid} was never delivered after the heal"
        );
    }

    // Static cross-check: the restored relation the survivors finish
    // under, and the masked relation that detoured them mid-fault, are
    // both dead-end-free — delivery was guaranteed, not lucky.
    assert_eq!(find_dead_end(&mesh, &wf), None, "restored relation");
    let mid_fault = plan.fault_set_at(600, &mesh);
    let masked = FaultMasked::new(&mesh, &wf, &mid_fault);
    assert_eq!(find_dead_end(&mesh, &masked), None, "masked relation");
}

/// The same transient on the virtual-channel engine: double-y adaptive
/// packets blocked by the dead link wait it out (timeouts disabled) and
/// are all delivered once the link heals, with the sanitizer attached.
#[test]
fn vc_packets_blocked_by_a_transient_fault_recover_after_the_heal() {
    let mesh = Mesh::new_2d(6, 6);
    let routing = DoubleYAdaptive::new();
    let plan = FaultPlan::new().transient_link(NodeId(14), Direction::EAST, 300, 900);
    let cfg = SimConfig::builder()
        .injection_rate(0.25)
        .lengths(LengthDist::Fixed(4))
        .warmup_cycles(0)
        .measure_cycles(2_000)
        .drain_cycles(6_000)
        .packet_timeout(0)
        .deadlock_threshold(20_000)
        .seed(0xeca2)
        .fault_plan(plan)
        .build();
    // The VC engine multiplexes four virtual channels per node with
    // depth-1 buffers; the sanitizer shadows that layout.
    let obs = InvariantObserver::new(ChannelLayout::new(mesh.num_nodes(), 4), 1);
    let pattern = Tornado::new();
    let mut sim = VcSim::with_observer(&mesh, &routing, &pattern, cfg, obs);
    let report = sim.run();

    assert!(!report.deadlocked, "transient fault must not wedge the run");
    sim.observer().assert_clean();
    assert_eq!(report.dropped_packets, 0);
    assert_eq!(report.retries, 0, "recovery must not lean on retries");
    assert_eq!(
        report.delivered_packets, report.generated_packets,
        "every generated packet must be delivered after the fault heals"
    );
    assert!(report.generated_packets > 50, "scenario carried real load");
}

/// Determinism of the recovery path itself: the same seeded transient
/// produces the same misrouted set and the same delivery outcome.
#[test]
fn recovery_runs_are_deterministic_across_identical_seeds() {
    let run = || {
        let mesh = Mesh::new_2d(6, 6);
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let plan = FaultPlan::new().transient_link(NodeId(14), Direction::EAST, 300, 900);
        let cfg = SimConfig::builder()
            .injection_rate(0.25)
            .lengths(LengthDist::Fixed(4))
            .warmup_cycles(0)
            .measure_cycles(2_000)
            .drain_cycles(6_000)
            .packet_timeout(0)
            .deadlock_threshold(20_000)
            .seed(0xeca1)
            .fault_plan(plan)
            .build();
        let pattern = Tornado::new();
        let mut sim = Sim::with_observer(&mesh, &wf, &pattern, cfg, RecoveryTrace::default());
        let report = sim.run();
        let mut misrouted: Vec<u32> = sim.observer().misrouted.iter().copied().collect();
        misrouted.sort_unstable();
        (
            report.delivered_packets,
            report.generated_packets,
            misrouted,
        )
    };
    assert_eq!(run(), run());
}
