//! The `results/turnprove.json` artifact must be byte-identical across
//! reruns: the matrix order is fixed, every name is derived (never
//! iteration-order dependent), and the JSON renderer emits fields in a
//! stable order. A rerun diff is therefore always a real change.

use turnroute_analysis::prove::{run, ProveOptions};

#[test]
fn quick_prove_report_is_byte_identical_across_reruns() {
    let opts = ProveOptions {
        quick: true,
        inject_bad: false,
    };
    let a = run(&opts).to_json();
    let b = run(&opts).to_json();
    assert_eq!(a, b, "turnprove report must be deterministic");
    assert!(turnroute_sim::obs::json::validate(&a), "{a}");
}
