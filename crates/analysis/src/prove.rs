//! The `turnprove` prover and driver: proof certificates over the whole
//! configuration matrix.
//!
//! [`prove`] takes an extracted [`GraphSpec`] and produces a
//! [`Certificate`]: a total channel numbering when the dependency graph
//! is acyclic (via the model crate's generalized
//! [`numbering_from_edges`]), a *minimal* witness cycle when it is not
//! (a shortest cycle through the offending component), and one explicit
//! legal path per deliverable ordered node pair. Every certificate is
//! immediately re-validated by the independent checker
//! ([`crate::check`]) — the driver records the checker's verdict, never
//! the prover's word for it.
//!
//! [`run`] walks the matrix: the named 2D/3D turn sets, all twelve safe
//! two-turn sets, the hypercube and torus algorithms, the double-y
//! virtual-channel scheme, and every fault plan of the experiments
//! crate's degradation sweep — then cross-validates a seeded selection
//! of verdicts against live simulator behavior through
//! [`turnroute_sim::harness`].

use crate::certificate::{Certificate, GraphSpec, PathCert, Verdict};
use crate::extract;
use crate::routing::TurnSetRouting;
use turnroute_model::numbering::numbering_from_edges;
use turnroute_model::{presets, Cdg, Turn, TurnSet};
use turnroute_routing::torus::{NegativeFirstTorus, WrapOnFirstHop};
use turnroute_routing::{hex, hypercube, mesh2d, RoutingFunction, RoutingMode};
use turnroute_sim::obs::json;
use turnroute_sim::{harness, FaultPlan, Sim, SimConfig};
use turnroute_topology::{FaultSet, HexMesh, Hypercube, Mesh, Topology, Torus};
use turnroute_traffic::Uniform;
use turnroute_vc::{DoubleYAdaptive, VcSim};

/// Options controlling a prove run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProveOptions {
    /// Shrink the sweep mesh and the cross-validation runs (CI-friendly).
    pub quick: bool,
    /// Add a configuration with a planted cyclic virtual-channel
    /// assignment *expected to be acyclic*; the run must then fail with a
    /// checker-validated witness cycle (self-test of the gate).
    pub inject_bad: bool,
}

/// The failure-fraction grid of the experiments crate's fault sweep,
/// mirrored here so every fault plan the degradation curves run is also
/// proven. `turnroute-experiments` asserts the two grids stay equal.
pub const SWEEP_FRACTIONS: [f64; 6] = [0.0, 0.02, 0.05, 0.10, 0.15, 0.20];

/// The default seed of the `exp` binary, whose sweep plans this matrix
/// reproves (`fault_seed = seed + round(fraction * 10_000)`).
pub const SWEEP_SEED: u64 = 1;

/// One proven configuration.
#[derive(Debug, Clone)]
pub struct ProveEntry {
    /// Configuration name (topology × routing × faults).
    pub config: String,
    /// Extraction kind: `turn-set`, `routing`, `routing+faults`, or `vc`.
    pub kind: String,
    /// Channel-vertex count of the extracted graph.
    pub channels: usize,
    /// Dependency-edge count.
    pub deps: usize,
    /// Whether the configuration is expected to be deadlock free.
    pub expect_acyclic: bool,
    /// The proven verdict: `true` = acyclicity certificate emitted.
    pub acyclic: bool,
    /// Whether the independent checker accepted the certificate.
    pub checker_ok: bool,
    /// The checker's rejection reason, when it rejected.
    pub checker_err: Option<String>,
    /// Ordered pairs with a certified path.
    pub certified_pairs: usize,
    /// Ordered pairs claimed unreachable (fault-degraded configs only).
    pub unreachable_pairs: usize,
    /// Whether every ordered pair must be certified (healthy configs).
    pub expect_full_connectivity: bool,
    /// Rendered witness cycle, when the verdict is cyclic.
    pub witness: Option<String>,
}

impl ProveEntry {
    /// Whether this configuration satisfied its expectations with a
    /// checker-validated certificate.
    pub fn ok(&self) -> bool {
        self.checker_ok
            && self.acyclic == self.expect_acyclic
            && (!self.expect_full_connectivity || self.unreachable_pairs == 0)
    }
}

/// One cross-validation of a static verdict against live simulation.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// Configuration simulated.
    pub config: String,
    /// The static verdict: certificate of acyclicity exists.
    pub static_acyclic: bool,
    /// Whether the seeded run ended in detected deadlock.
    pub deadlocked: bool,
}

impl CrossCheck {
    /// Agreement: for these probe configurations acyclicity and observed
    /// deadlock are mutually exclusive and jointly exhaustive.
    pub fn ok(&self) -> bool {
        self.static_acyclic != self.deadlocked
    }
}

/// The complete outcome of a prove run.
#[derive(Debug, Clone)]
pub struct ProveReport {
    /// Whether the run used the shortened quick profile.
    pub quick: bool,
    /// Safe two-turn sets found by the exhaustive pair sweep (must be 12).
    pub two_turn_safe: usize,
    /// Every proven configuration, in matrix order.
    pub entries: Vec<ProveEntry>,
    /// The simulator cross-validations.
    pub cross_checks: Vec<CrossCheck>,
}

impl ProveReport {
    /// The overall CI verdict.
    pub fn passed(&self) -> bool {
        self.two_turn_safe == 12
            && self.entries.iter().all(ProveEntry::ok)
            && self.cross_checks.iter().all(CrossCheck::ok)
    }

    /// Human-readable diagnostics.
    pub fn render(&self) -> String {
        let mut out = String::from("== turnprove: proof certificates ==\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{} {:<52} [{}] {} ch, {} deps, verdict {}, {} paths / {} unreachable\n",
                if e.ok() { "ok  " } else { "FAIL" },
                e.config,
                e.kind,
                e.channels,
                e.deps,
                if e.acyclic {
                    "acyclic (numbering checked)"
                } else {
                    "CYCLIC (witness checked)"
                },
                e.certified_pairs,
                e.unreachable_pairs,
            ));
            if let Some(w) = &e.witness {
                out.push_str(&format!("       witness: {w}\n"));
            }
            if let Some(err) = &e.checker_err {
                out.push_str(&format!("       checker rejected: {err}\n"));
            }
        }
        out.push_str(&format!(
            "safe two-turn sets: {} (expected 12)\n",
            self.two_turn_safe
        ));
        out.push_str("\n== turnprove: simulator cross-validation ==\n");
        for x in &self.cross_checks {
            out.push_str(&format!(
                "{} {:<52} static {}, simulated {}\n",
                if x.ok() { "ok  " } else { "FAIL" },
                x.config,
                if x.static_acyclic {
                    "acyclic"
                } else {
                    "cyclic"
                },
                if x.deadlocked {
                    "deadlocked"
                } else {
                    "deadlock-free"
                },
            ));
        }
        out.push_str(&format!(
            "\nturnprove: {}\n",
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// Machine-readable form, stable field order, for
    /// `results/turnprove.json`.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                format!(
                    "{{\"config\":{},\"kind\":{},\"channels\":{},\"deps\":{},\
                     \"expect_acyclic\":{},\"acyclic\":{},\"checker_ok\":{},\
                     \"certified_pairs\":{},\"unreachable_pairs\":{},\
                     \"expect_full_connectivity\":{},\"ok\":{}{}{}}}",
                    json::string(&e.config),
                    json::string(&e.kind),
                    e.channels,
                    e.deps,
                    e.expect_acyclic,
                    e.acyclic,
                    e.checker_ok,
                    e.certified_pairs,
                    e.unreachable_pairs,
                    e.expect_full_connectivity,
                    e.ok(),
                    match &e.witness {
                        Some(w) => format!(",\"witness\":{}", json::string(w)),
                        None => String::new(),
                    },
                    match &e.checker_err {
                        Some(err) => format!(",\"checker_err\":{}", json::string(err)),
                        None => String::new(),
                    },
                )
            })
            .collect();
        let xval: Vec<String> = self
            .cross_checks
            .iter()
            .map(|x| {
                format!(
                    "{{\"config\":{},\"static_acyclic\":{},\"deadlocked\":{},\"ok\":{}}}",
                    json::string(&x.config),
                    x.static_acyclic,
                    x.deadlocked,
                    x.ok(),
                )
            })
            .collect();
        format!(
            "{{\"title\":\"turnprove\",\"quick\":{},\"passed\":{},\
             \"two_turn_safe\":{},\"entries\":[{}],\"cross_checks\":[{}]}}",
            self.quick,
            self.passed(),
            self.two_turn_safe,
            entries.join(","),
            xval.join(","),
        )
    }
}

/// Prove one extracted channel graph: deadlock verdict with proof object,
/// plus connectivity certificates for every deliverable ordered pair.
pub fn prove(spec: &GraphSpec) -> Certificate {
    let verdict = verdict_of(spec);
    let (paths, unreachable) = connectivity(spec);
    Certificate {
        verdict,
        paths,
        unreachable,
    }
}

/// The deadlock verdict alone: a total channel numbering from scratch, or
/// a minimal witness cycle. Shared with the incremental healer
/// ([`crate::heal`]), whose full-reprove fallback needs the verdict
/// without paying for connectivity twice.
pub(crate) fn verdict_of(spec: &GraphSpec) -> Verdict {
    match numbering_from_edges(spec.channels.len(), &spec.deps) {
        Some(numbers) => Verdict::Acyclic {
            numbering: numbers.into_iter().map(|x| x as u64).collect(),
        },
        None => Verdict::Cyclic {
            cycle: minimal_cycle(spec),
        },
    }
}

/// A minimal witness cycle: find any cycle by depth-first search, then
/// shrink it to a shortest cycle through one of its vertices by
/// breadth-first search. Deterministic: ties break toward lower ids.
fn minimal_cycle(spec: &GraphSpec) -> Vec<u32> {
    let n = spec.channels.len();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in &spec.deps {
        adj[a as usize].push(b);
    }
    let seed = dfs_cycle(&adj).expect("minimal_cycle called on a cyclic graph");
    let mut best: Option<Vec<u32>> = None;
    for &v in &seed {
        if let Some(cycle) = shortest_cycle_through(&adj, v as usize) {
            if best.as_ref().is_none_or(|b| cycle.len() < b.len()) {
                best = Some(cycle);
            }
        }
    }
    best.expect("a vertex of a DFS cycle lies on a cycle")
}

/// Any cycle, by iterative DFS with gray-path tracking.
fn dfs_cycle(adj: &[Vec<u32>]) -> Option<Vec<u32>> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    let n = adj.len();
    let mut color = vec![WHITE; n];
    let mut path = Vec::new();
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if color[start] != WHITE {
            continue;
        }
        color[start] = GRAY;
        path.push(start);
        stack.push((start, 0));
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < adj[v].len() {
                let w = adj[v][*next] as usize;
                *next += 1;
                match color[w] {
                    WHITE => {
                        color[w] = GRAY;
                        path.push(w);
                        stack.push((w, 0));
                    }
                    GRAY => {
                        let pos = path.iter().position(|&x| x == w).expect("on path");
                        return Some(path[pos..].iter().map(|&i| i as u32).collect());
                    }
                    _ => {}
                }
            } else {
                color[v] = 2;
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

/// Shortest cycle through `v` (BFS over successors back to `v`), or
/// `None` if `v` lies on no cycle.
fn shortest_cycle_through(adj: &[Vec<u32>], v: usize) -> Option<Vec<u32>> {
    let n = adj.len();
    let mut parent = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    // Seed with v's successors at depth 1; finding v again closes a cycle.
    for &w in &adj[v] {
        if w as usize == v {
            return Some(vec![v as u32]); // self-loop
        }
        if parent[w as usize] == u32::MAX {
            parent[w as usize] = v as u32;
            queue.push_back(w as usize);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &w in &adj[u] {
            if w as usize == v {
                // Reconstruct v -> ... -> u, the cycle closes u -> v.
                let mut rev = vec![u as u32];
                let mut cur = u;
                while cur != v {
                    cur = parent[cur] as usize;
                    rev.push(cur as u32);
                }
                rev.reverse();
                return Some(rev);
            }
            if parent[w as usize] == u32::MAX {
                parent[w as usize] = u as u32;
                queue.push_back(w as usize);
            }
        }
    }
    None
}

/// Connectivity certificates: for each destination, a reverse
/// breadth-first search computes the residual distance of every channel
/// state, then each source's path greedily descends the distance. Pairs
/// with no finite-distance injection channel are claimed unreachable.
pub(crate) fn connectivity(spec: &GraphSpec) -> (Vec<PathCert>, Vec<(u32, u32)>) {
    let n = spec.num_nodes as usize;
    let n_ch = spec.channels.len();
    let mut paths = Vec::new();
    let mut unreachable = Vec::new();
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n_ch];
    for dest in 0..n {
        let table = &spec.routes[dest];
        for r in &mut rev {
            r.clear();
        }
        for held in 0..n_ch {
            for &next in &table[n + held] {
                rev[next as usize].push(held as u32);
            }
        }
        // dist[c] = channels still to acquire after c before reaching dest.
        let mut dist = vec![u32::MAX; n_ch];
        let mut queue = std::collections::VecDeque::new();
        for (c, ch) in spec.channels.iter().enumerate() {
            if ch.dst as usize == dest {
                dist[c] = 0;
                queue.push_back(c);
            }
        }
        while let Some(c) = queue.pop_front() {
            for &p in &rev[c] {
                if dist[p as usize] == u32::MAX {
                    dist[p as usize] = dist[c] + 1;
                    queue.push_back(p as usize);
                }
            }
        }
        for src in 0..n {
            if src == dest {
                continue;
            }
            let first = table[src]
                .iter()
                .copied()
                .filter(|&c| dist[c as usize] != u32::MAX)
                .min_by_key(|&c| (dist[c as usize], c));
            let Some(mut cur) = first else {
                unreachable.push((src as u32, dest as u32));
                continue;
            };
            let mut path = vec![cur];
            while dist[cur as usize] > 0 {
                let want = dist[cur as usize] - 1;
                cur = table[n + cur as usize]
                    .iter()
                    .copied()
                    .filter(|&c| dist[c as usize] == want)
                    .min()
                    .expect("distance admits a descending successor");
                path.push(cur);
            }
            paths.push(PathCert {
                src: src as u32,
                dst: dest as u32,
                path,
            });
        }
    }
    paths.sort_by_key(|p| (p.src, p.dst));
    unreachable.sort_unstable();
    (paths, unreachable)
}

/// Prove `spec`, run the independent checker on the result, and fold both
/// outcomes into a matrix entry.
fn entry(kind: &str, expect_acyclic: bool, expect_full: bool, spec: &GraphSpec) -> ProveEntry {
    let cert = prove(spec);
    let checked = crate::check::check(spec, &cert);
    let witness = match &cert.verdict {
        Verdict::Cyclic { cycle } => Some(spec.render_cycle(cycle)),
        Verdict::Acyclic { .. } => None,
    };
    ProveEntry {
        config: spec.name.clone(),
        kind: kind.to_string(),
        channels: spec.channels.len(),
        deps: spec.deps.len(),
        expect_acyclic,
        acyclic: cert.verdict.is_acyclic(),
        checker_ok: checked.is_ok(),
        checker_err: checked.err(),
        certified_pairs: cert.paths.len(),
        unreachable_pairs: cert.unreachable.len(),
        expect_full_connectivity: expect_full,
        witness,
    }
}

/// Run the full prove matrix.
pub fn run(opts: &ProveOptions) -> ProveReport {
    let mut entries = Vec::new();

    // Named 2D turn sets: deterministic baseline plus the paper's three
    // adaptive disciplines, proven from the potential (turn-set) CDG.
    let mesh5 = Mesh::new_2d(5, 5);
    let named_2d: [(&str, TurnSet); 4] = [
        ("xy", presets::xy_turns()),
        ("west-first", presets::west_first_turns()),
        ("north-last", presets::north_last_turns()),
        ("negative-first", presets::negative_first_turns(2)),
    ];
    for (nm, set) in &named_2d {
        let spec = extract::from_turn_set(format!("mesh5x5/{nm}"), &mesh5, set);
        entries.push(entry("turn-set", true, true, &spec));
    }

    // Every safe two-turn set: sweep all 28 unordered pairs of prohibited
    // 90-degree turns; exactly the paper's 12 survive the cycle test, and
    // each survivor gets a full certificate.
    let mesh4 = Mesh::new_2d(4, 4);
    let turns = Turn::all_ninety(2);
    let mut two_turn_safe = 0usize;
    for i in 0..turns.len() {
        for j in (i + 1)..turns.len() {
            let mut set = TurnSet::all_ninety(2);
            set.prohibit(turns[i]);
            set.prohibit(turns[j]);
            if !Cdg::from_turn_set(&mesh4, &set).is_acyclic() {
                continue;
            }
            two_turn_safe += 1;
            let spec = extract::from_turn_set(
                format!("mesh4x4/two-turn {{{}, {}}}", turns[i], turns[j]),
                &mesh4,
                &set,
            );
            entries.push(entry("turn-set", true, true, &spec));
        }
    }

    // Named 3D turn sets.
    let mesh3 = Mesh::new_cubic(3, 3);
    let named_3d: [(&str, TurnSet); 3] = [
        ("negative-first-3d", presets::negative_first_turns(3)),
        ("abonf-3d", presets::all_but_one_negative_first_turns(3)),
        ("abopl-3d", presets::all_but_one_positive_last_turns(3)),
    ];
    for (nm, set) in &named_3d {
        let spec = extract::from_turn_set(format!("mesh3x3x3/{nm}"), &mesh3, set);
        entries.push(entry("turn-set", true, true, &spec));
    }

    // Routing-function extraction: hypercube and torus algorithms, whose
    // disciplines are not plain 2D turn sets.
    let cube = Hypercube::new(4);
    let e_cube = hypercube::e_cube(4);
    let p_cube = hypercube::p_cube(4, RoutingMode::Minimal);
    let cube_algs: [&dyn RoutingFunction; 2] = [&e_cube, &p_cube];
    for alg in cube_algs {
        let spec = extract::from_routing(format!("4-cube/{}", alg.name()), &cube, alg);
        entries.push(entry("routing", true, true, &spec));
    }
    let torus = Torus::new(4, 2);
    let nft = NegativeFirstTorus::new(2);
    let spec = extract::from_routing(format!("4-ary 2-cube/{}", nft.name()), &torus, &nft);
    entries.push(entry("routing", true, true, &spec));
    let wrapped = WrapOnFirstHop::new(mesh2d::west_first(RoutingMode::Minimal), &torus);
    let spec = extract::from_routing(format!("4-ary 2-cube/{}", wrapped.name()), &torus, &wrapped);
    entries.push(entry("routing", true, true, &spec));

    // The torus with every 90-degree turn allowed: the wraparound rings
    // alone close dependency cycles, so even the full turn set is
    // refuted — the cyclic side of the matrix turnsynth inverts.
    let spec = extract::from_turn_set("4-ary 2-cube/unrestricted", &torus, &TurnSet::all_ninety(2));
    entries.push(entry("turn-set", false, true, &spec));

    // An irregular netlist with no topology object at all: up*/down*
    // over a 6-node graph of two bridged triangles, extracted directly
    // from its link list. Exercises the spec format's claim that the
    // prover/checker pair is topology-agnostic.
    let spec = extract::from_netlist(
        "netlist6/up-down (irregular)",
        6,
        &[
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 4),
            (3, 4),
            (3, 5),
            (4, 5),
        ],
    );
    entries.push(entry("netlist", true, true, &spec));

    // The 3-stage butterfly, unrestricted: without the up*/down*
    // discipline the straight/cross link pairs between adjacent stages
    // close 4-cycles (another cyclic input for turnsynth).
    let spec = extract::from_netlist_unrestricted(
        "butterfly3/unrestricted (multistage)",
        12,
        &crate::synth::report::butterfly3_links(),
    );
    entries.push(entry("netlist", false, true, &spec));

    // The hexagonal mesh of Section 7: negative-first over six directions,
    // proven intact and under a single failed diagonal link (the degraded
    // relation keeps its acyclicity but may lose pairs to the mask).
    let hexm = HexMesh::new(4, 4);
    let nf_hex = hex::negative_first_hex(RoutingMode::Minimal);
    let spec = extract::from_routing(format!("hex4x4/{}", nf_hex.name()), &hexm, &nf_hex);
    entries.push(entry("routing", true, true, &spec));
    let mut hex_faults = FaultSet::new(&hexm);
    let victim = hexm.node_at_axial(1, 1);
    let dir = turnroute_topology::Direction::all(3)
        .find(|&d| hexm.neighbor(victim, d).is_some())
        .expect("interior hex node has neighbors");
    hex_faults.fail_link(&hexm, victim, dir);
    let spec = extract::from_faulted_routing(
        format!("hex4x4/{}+fault (1 link down)", nf_hex.name()),
        &hexm,
        &nf_hex,
        &hex_faults,
    );
    entries.push(entry("routing+faults", true, false, &spec));

    // The double-y virtual-channel scheme: fully adaptive, minimal, and
    // certified deadlock free over *virtual* channels.
    let vc_mesh = if opts.quick {
        Mesh::new_2d(4, 4)
    } else {
        Mesh::new_2d(8, 8)
    };
    let vc_name = format!("mesh{0}x{0}/double-y-adaptive", vc_mesh.radix(0));
    let spec = extract::from_vc_routing(vc_name, &vc_mesh, &DoubleYAdaptive::new());
    entries.push(entry("vc", true, true, &spec));

    // Every fault plan of the experiments sweep: same mesh, same seed
    // derivation, same fractions — the degraded relation (fault-masked
    // routes plus turn-legal misroute fallbacks) is proven per pattern.
    let sweep_mesh = if opts.quick {
        Mesh::new_2d(8, 8)
    } else {
        Mesh::new_2d(16, 16)
    };
    let radix = sweep_mesh.radix(0);
    let xy = mesh2d::xy();
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let nl = mesh2d::north_last(RoutingMode::Minimal);
    let nf = mesh2d::negative_first(RoutingMode::Minimal);
    let sweep_algs: [&dyn RoutingFunction; 4] = [&xy, &wf, &nl, &nf];
    for alg in sweep_algs {
        for &fraction in &SWEEP_FRACTIONS {
            let fault_seed = SWEEP_SEED.wrapping_add((fraction * 10_000.0).round() as u64);
            let plan = FaultPlan::random_links(&sweep_mesh, fraction, 0, fault_seed);
            let faults = plan.fault_set_at(0, &sweep_mesh);
            let name = format!(
                "mesh{radix}x{radix}/{}+faults f={fraction:.2} ({} links down)",
                alg.name(),
                faults.failed_link_count(),
            );
            let spec = extract::from_faulted_routing(name, &sweep_mesh, alg, &faults);
            entries.push(entry("routing+faults", true, fraction == 0.0, &spec));
        }
    }

    // Negative controls: the prover must emit checker-validated witness
    // cycles for the known-broken relations, or the gate is blind.
    let spec = extract::from_turn_set(
        "mesh4x4/unrestricted (negative control)",
        &mesh4,
        &TurnSet::all_ninety(2),
    );
    entries.push(entry("turn-set", false, true, &spec));
    let spec = extract::from_vc_routing(
        "mesh4x4/planted-cyclic-vc (negative control)",
        &mesh4,
        &extract::PlantedCyclicVc,
    );
    entries.push(entry("vc", false, true, &spec));

    if opts.inject_bad {
        // The self-test: the same planted cyclic assignment, but declared
        // deadlock free — the run must fail, with the witness on record.
        let spec = extract::from_vc_routing(
            "mesh4x4/planted-cyclic-vc (injected via --inject-bad)",
            &mesh4,
            &extract::PlantedCyclicVc,
        );
        entries.push(entry("vc", true, true, &spec));
    }

    let cross_checks = cross_validate(opts.quick);

    ProveReport {
        quick: opts.quick,
        two_turn_safe,
        entries,
        cross_checks,
    }
}

/// Seeded simulator runs confronting a selection of static verdicts with
/// engine behavior: an acyclic certificate must survive a saturating
/// probe; the cyclic negative control must realize its predicted
/// deadlock.
fn cross_validate(quick: bool) -> Vec<CrossCheck> {
    let mut checks = Vec::new();
    let mesh = Mesh::new_2d(4, 4);
    let pattern = Uniform::new();
    let measure = if quick { 4_000 } else { 12_000 };

    // Acyclic: west-first's maximal coherent function under saturation.
    let wf = TurnSetRouting::new("west-first", presets::west_first_turns(), &mesh);
    let report = harness::saturating_probe(&mesh, &wf, &pattern, 0xA11CE, measure, 1_000);
    checks.push(CrossCheck {
        config: "mesh4x4/west-first saturating probe".into(),
        static_acyclic: true,
        deadlocked: report.deadlocked,
    });

    // Cyclic: the unrestricted set's predicted cycle becomes a real
    // deadlock (same shape as the cross-validation test suite).
    let unrestricted = TurnSetRouting::new("unrestricted", TurnSet::all_ninety(2), &mesh);
    let report = harness::saturating_probe(&mesh, &unrestricted, &pattern, 3, 30_000, 200);
    checks.push(CrossCheck {
        config: "mesh4x4/unrestricted saturating probe".into(),
        static_acyclic: false,
        deadlocked: report.deadlocked,
    });

    // Acyclic over virtual channels: double-y under saturation in the VC
    // engine.
    let routing = DoubleYAdaptive::new();
    let cfg = harness::saturating_config(0xDB1, measure, 1_000);
    let report = VcSim::new(&mesh, &routing, &pattern, cfg).run();
    checks.push(CrossCheck {
        config: "mesh4x4/double-y-adaptive saturating probe".into(),
        static_acyclic: true,
        deadlocked: report.deadlocked,
    });

    // A degraded relation: xy under the sweep's 5% fault plan, with the
    // timeout machinery on so partition shows up as drops, not deadlock.
    let sweep_mesh = Mesh::new_2d(8, 8);
    let fault_seed = SWEEP_SEED.wrapping_add((0.05f64 * 10_000.0).round() as u64);
    let plan = FaultPlan::random_links(&sweep_mesh, 0.05, 0, fault_seed);
    let xy = mesh2d::xy();
    let cfg = SimConfig::builder()
        .injection_rate(0.1)
        .warmup_cycles(0)
        .measure_cycles(if quick { 2_000 } else { 6_000 })
        .drain_cycles(2_000)
        .packet_timeout(300)
        .max_retries(1)
        .deadlock_threshold(5_000)
        .fault_plan(plan)
        .seed(0xFA17)
        .build();
    let report = Sim::new(&sweep_mesh, &xy, &pattern, cfg).run();
    checks.push(CrossCheck {
        config: "mesh8x8/xy+faults f=0.05 degradation probe".into(),
        static_acyclic: true,
        deadlocked: report.deadlocked,
    });

    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_prove_passes_end_to_end() {
        let report = run(&ProveOptions {
            quick: true,
            inject_bad: false,
        });
        assert!(report.passed(), "\n{}", report.render());
        assert_eq!(report.two_turn_safe, 12);
        assert!(json::validate(&report.to_json()), "{}", report.to_json());
        // The negative controls must be present, cyclic, and checked.
        let nc = report
            .entries
            .iter()
            .filter(|e| e.config.contains("negative control"))
            .collect::<Vec<_>>();
        assert_eq!(nc.len(), 2);
        for e in nc {
            assert!(!e.acyclic && e.checker_ok && e.ok(), "{}", e.config);
            assert!(e.witness.is_some());
        }
    }

    #[test]
    fn inject_bad_fails_with_a_checker_validated_witness() {
        let report = run(&ProveOptions {
            quick: true,
            inject_bad: true,
        });
        assert!(!report.passed());
        let bad = report
            .entries
            .iter()
            .find(|e| e.config.contains("--inject-bad"))
            .expect("injected entry present");
        assert!(!bad.ok() && !bad.acyclic);
        assert!(bad.checker_ok, "the witness itself must be valid");
        let w = bad.witness.as_deref().expect("witness present");
        assert!(w.contains("channel cycle"), "{w}");
    }

    #[test]
    fn minimal_cycle_is_genuinely_minimal_on_a_known_graph() {
        // Ring 0 -> 1 -> 2 -> 0 plus a long detour; the witness must pick
        // the 3-cycle.
        let spec = GraphSpec {
            name: "ring".into(),
            num_nodes: 1,
            channels: (0..6)
                .map(|i| crate::certificate::ChannelVertex {
                    src: 0,
                    dst: 0,
                    label: format!("c{i}"),
                })
                .collect(),
            deps: vec![(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 5), (5, 0)],
            routes: vec![vec![Vec::new(); 7]],
        };
        let cycle = minimal_cycle(&spec);
        assert_eq!(cycle.len(), 3, "{cycle:?}");
    }
}
