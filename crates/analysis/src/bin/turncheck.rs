//! `turncheck` — explicit-state bounded model checking of the production
//! engines, pinned to the turn-model proofs.
//!
//! Usage:
//!
//! ```text
//! turncheck [--quick] [--out FILE] [--ttr-out FILE] [--inject-bad]
//!
//! --quick        certify the safe turn sets on 2×2 only (skip 3×3)
//! --out FILE     write the JSON report here (default results/mc.json)
//! --ttr-out FILE write the first counterexample's replay TTRL log here
//!                (default results/mc_counterexample.ttr)
//! --inject-bad   run only a planted arbitration bug (one router skips
//!                the turn-set filter) declared deadlock free; the run
//!                must then FAIL on a reachable stuck state (self-test
//!                of the gate)
//! ```
//!
//! Exit status is zero exactly when every configuration met its
//! expectation: census-safe turn sets exhaustively deadlock free within
//! their misroute bounds, census-unsafe sets refuted by a reachable
//! deadlock that refines the CDG proof cycle and replays to a stuck
//! state on a fresh engine.

use std::path::PathBuf;
use std::process::ExitCode;
use turnroute_analysis::mc::{run, McOptions};

fn usage() -> ExitCode {
    eprintln!("usage: turncheck [--quick] [--out FILE] [--ttr-out FILE] [--inject-bad]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut opts = McOptions::default();
    let mut out = PathBuf::from("results/mc.json");
    let mut ttr_out = PathBuf::from("results/mc_counterexample.ttr");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--inject-bad" => opts.inject_bad = true,
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => return usage(),
            },
            "--ttr-out" => match args.next() {
                Some(path) => ttr_out = PathBuf::from(path),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = run(&opts);
    print!("{}", report.render());

    if let Err(e) = turnroute_obslog::artifact::write_artifact(&out, &report.to_json()) {
        eprintln!("turncheck: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("turncheck: report written to {}", out.display());

    if let Some(ttr) = &report.counterexample_ttr {
        if let Some(dir) = ttr_out.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&ttr_out, ttr) {
            eprintln!("turncheck: cannot write {}: {e}", ttr_out.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "turncheck: counterexample log written to {} ({} bytes)",
            ttr_out.display(),
            ttr.len()
        );
    }

    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
