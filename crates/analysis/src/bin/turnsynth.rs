//! `turnsynth` — synthesized escape/adaptive VC assignments, with
//! certificates, for every cyclic configuration in the matrix.
//!
//! Usage:
//!
//! ```text
//! turnsynth [--quick] [--out FILE] [--inject-bad]
//!
//! --quick        shrink the simulator cross-checks
//! --out FILE     write the JSON report here (default results/turnsynth.json)
//! --inject-bad   plant a dependency cycle inside the escape class of one
//!                synthesized assignment while keeping the clean
//!                certificate; the independent checker — not the
//!                synthesizer — must reject it and the run must FAIL
//!                (self-test of the gate)
//! ```
//!
//! Exit status is zero exactly when every cyclic input received a
//! synthesized assignment whose certificate the independent checker
//! accepted, with full connectivity, no escape dead ends, and agreeing
//! simulator cross-validations.

use std::path::PathBuf;
use std::process::ExitCode;
use turnroute_analysis::synth::{run, SynthOptions};

fn usage() -> ExitCode {
    eprintln!("usage: turnsynth [--quick] [--out FILE] [--inject-bad]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut opts = SynthOptions::default();
    let mut out = PathBuf::from("results/turnsynth.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--inject-bad" => opts.inject_bad = true,
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = run(&opts);
    print!("{}", report.render());

    if let Err(e) = turnroute_obslog::artifact::write_artifact(&out, &report.to_json()) {
        eprintln!("turnsynth: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("turnsynth: report written to {}", out.display());

    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
