//! `turnprove` — machine-checkable proof certificates for every
//! configuration of the turn-model workspace.
//!
//! Usage:
//!
//! ```text
//! turnprove [--quick] [--out FILE] [--inject-bad]
//!
//! --quick        shrink the sweep mesh and the cross-validation runs
//! --out FILE     write the JSON report here (default results/turnprove.json)
//! --inject-bad   declare a planted cyclic VC assignment deadlock free;
//!                the run must then FAIL with a checker-validated witness
//!                cycle (self-test of the gate)
//! ```
//!
//! Exit status is zero exactly when every certificate was accepted by the
//! independent checker, every verdict matched its expectation, and every
//! simulator cross-validation agreed.

use std::path::PathBuf;
use std::process::ExitCode;
use turnroute_analysis::prove::{run, ProveOptions};

fn usage() -> ExitCode {
    eprintln!("usage: turnprove [--quick] [--out FILE] [--inject-bad]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut opts = ProveOptions::default();
    let mut out = PathBuf::from("results/turnprove.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--inject-bad" => opts.inject_bad = true,
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = run(&opts);
    print!("{}", report.render());

    if let Err(e) = turnroute_obslog::artifact::write_artifact(&out, &report.to_json()) {
        eprintln!("turnprove: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("turnprove: report written to {}", out.display());

    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
