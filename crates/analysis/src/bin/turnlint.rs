//! `turnlint` — the machine-checkable CI gate over the turn-model
//! design space.
//!
//! Usage:
//!
//! ```text
//! turnlint [--quick] [--out FILE] [--inject-bad]
//!
//! --quick        shorten simulation runs and skip the 3D census
//! --out FILE     write the JSON report here (default results/turnlint.json)
//! --inject-bad   inject a known-broken turn set; the run must then FAIL
//!                with a witness cycle (self-test of the gate)
//! ```
//!
//! Exit status is zero exactly when every claim, matrix row, and
//! sanitized simulation passed.

use std::path::PathBuf;
use std::process::ExitCode;
use turnroute_analysis::lint::{run, LintOptions};

fn usage() -> ExitCode {
    eprintln!("usage: turnlint [--quick] [--out FILE] [--inject-bad]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut opts = LintOptions::default();
    let mut out = PathBuf::from("results/turnlint.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--inject-bad" => opts.inject_bad = true,
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = run(&opts);
    print!("{}", report.render());

    if let Some(parent) = out.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("turnlint: cannot create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let mut json = report.to_json();
    json.push('\n');
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("turnlint: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("turnlint: report written to {}", out.display());

    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
