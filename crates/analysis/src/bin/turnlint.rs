//! `turnlint` — the machine-checkable CI gate over the turn-model
//! design space.
//!
//! Usage:
//!
//! ```text
//! turnlint [--quick] [--out FILE] [--inject-bad] [--min-witness]
//!
//! --quick        shorten simulation runs and skip the 3D census
//! --out FILE     write the JSON report here (default results/turnlint.json)
//! --inject-bad   inject a known-broken turn set; the run must then FAIL
//!                with a witness cycle (self-test of the gate)
//! --min-witness  report globally-minimal witness cycles (BFS girth
//!                search) and pin the unrestricted mesh CDG girth
//! ```
//!
//! Exit status is zero exactly when every claim, matrix row, and
//! sanitized simulation passed.

use std::path::PathBuf;
use std::process::ExitCode;
use turnroute_analysis::lint::{run, LintOptions};

fn usage() -> ExitCode {
    eprintln!("usage: turnlint [--quick] [--out FILE] [--inject-bad] [--min-witness]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut opts = LintOptions::default();
    let mut out = PathBuf::from("results/turnlint.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--inject-bad" => opts.inject_bad = true,
            "--min-witness" => opts.min_witness = true,
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = run(&opts);
    print!("{}", report.render());

    if let Err(e) = turnroute_obslog::artifact::write_artifact(&out, &report.to_json()) {
        eprintln!("turnlint: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("turnlint: report written to {}", out.display());

    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
