//! The independent certificate checker.
//!
//! This module is the small, auditable end of the `turnprove` trust
//! boundary: it validates a [`Certificate`] against its [`GraphSpec`]
//! using nothing but set membership and single-pass scans — no graph
//! search, no routing logic, no dependency on the prover
//! ([`crate::prove`]) whatsoever. CI trusts *this* code plus the
//! mechanical extraction; the prover can be arbitrarily clever (or
//! arbitrarily wrong) and a bad proof still cannot get through.
//!
//! What is checked:
//!
//! 1. **Spec well-formedness** — channel endpoints and route targets in
//!    range, route tables fully sized.
//! 2. **Route/dependency consistency** — every move the routing relation
//!    offers from a channel state appears in `deps`, so the deadlock
//!    verdict covers every move real traffic can make.
//! 3. **Acyclicity proofs** — the numbering has one entry per channel and
//!    every dependency edge strictly increases it.
//! 4. **Cycle witnesses** — the cycle is nonempty and every consecutive
//!    pair (wrapping around) is a real dependency edge.
//! 5. **Connectivity certificates** — every ordered pair is either
//!    certified or claimed unreachable, exactly once; every certified path
//!    starts at an injection-legal channel at `src`, chains contiguously
//!    through route-legal moves, ends in `dst`, and is no longer than the
//!    channel count (so it cannot smuggle a loop).

use crate::certificate::{Certificate, GraphSpec, Verdict};
use std::collections::{HashMap, HashSet};

/// Validate `cert` against `spec`.
///
/// # Errors
///
/// Returns a description of the first defect found — in the spec, the
/// proof object, or the connectivity coverage.
pub fn check(spec: &GraphSpec, cert: &Certificate) -> Result<(), String> {
    check_spec(spec)?;
    let deps: HashSet<(u32, u32)> = spec.deps.iter().copied().collect();
    check_routes_covered_by_deps(spec, &deps)?;
    match &cert.verdict {
        Verdict::Acyclic { numbering } => check_numbering(spec, numbering)?,
        Verdict::Cyclic { cycle } => check_cycle(spec, &deps, cycle)?,
    }
    check_connectivity(spec, cert)
}

/// Structural sanity of the spec itself.
fn check_spec(spec: &GraphSpec) -> Result<(), String> {
    let n = spec.num_nodes;
    let c = spec.channels.len() as u32;
    for (i, ch) in spec.channels.iter().enumerate() {
        if ch.src >= n || ch.dst >= n {
            return Err(format!("channel {i} endpoint out of range"));
        }
    }
    if spec.routes.len() != n as usize {
        return Err(format!(
            "routes has {} destinations, expected {n}",
            spec.routes.len()
        ));
    }
    for (dest, table) in spec.routes.iter().enumerate() {
        if table.len() != spec.num_states() {
            return Err(format!(
                "routes[{dest}] has {} states, expected {}",
                table.len(),
                spec.num_states()
            ));
        }
        for outs in table {
            if let Some(&bad) = outs.iter().find(|&&o| o >= c) {
                return Err(format!("routes[{dest}] offers nonexistent channel {bad}"));
            }
        }
    }
    for &(a, b) in &spec.deps {
        if a >= c || b >= c {
            return Err(format!("dependency edge ({a}, {b}) out of range"));
        }
    }
    Ok(())
}

/// Every routing move from a channel state must be a dependency edge —
/// otherwise the deadlock verdict would not cover real traffic.
fn check_routes_covered_by_deps(
    spec: &GraphSpec,
    deps: &HashSet<(u32, u32)>,
) -> Result<(), String> {
    for (dest, table) in spec.routes.iter().enumerate() {
        for (held, outs) in table.iter().enumerate().skip(spec.num_nodes as usize) {
            let held = (held - spec.num_nodes as usize) as u32;
            for &next in outs {
                if !deps.contains(&(held, next)) {
                    return Err(format!(
                        "route to {dest} moves {held} -> {next} but deps has no such edge"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// An acyclicity proof: one number per channel, strictly increasing along
/// every dependency edge.
fn check_numbering(spec: &GraphSpec, numbering: &[u64]) -> Result<(), String> {
    if numbering.len() != spec.channels.len() {
        return Err(format!(
            "numbering has {} entries for {} channels",
            numbering.len(),
            spec.channels.len()
        ));
    }
    for &(a, b) in &spec.deps {
        if numbering[a as usize] >= numbering[b as usize] {
            return Err(format!(
                "edge ({a}, {b}) does not increase the numbering ({} >= {})",
                numbering[a as usize], numbering[b as usize]
            ));
        }
    }
    Ok(())
}

/// A cycle witness: nonempty, and every consecutive pair (including the
/// wrap-around) is a genuine dependency edge.
fn check_cycle(spec: &GraphSpec, deps: &HashSet<(u32, u32)>, cycle: &[u32]) -> Result<(), String> {
    if cycle.is_empty() {
        return Err("empty witness cycle".into());
    }
    let c = spec.channels.len() as u32;
    for (k, &v) in cycle.iter().enumerate() {
        if v >= c {
            return Err(format!("witness cycle names nonexistent channel {v}"));
        }
        let w = cycle[(k + 1) % cycle.len()];
        if !deps.contains(&(v, w)) {
            return Err(format!("witness step {v} -> {w} is not a dependency edge"));
        }
    }
    Ok(())
}

/// Connectivity: complete, non-overlapping coverage of all ordered pairs,
/// and each certified path replayed move by move against `routes`.
fn check_connectivity(spec: &GraphSpec, cert: &Certificate) -> Result<(), String> {
    let n = spec.num_nodes;
    let mut covered: HashMap<(u32, u32), bool> = HashMap::new(); // true = certified
    for p in &cert.paths {
        if covered.insert((p.src, p.dst), true).is_some() {
            return Err(format!("pair ({}, {}) covered twice", p.src, p.dst));
        }
    }
    for &(s, d) in &cert.unreachable {
        if covered.insert((s, d), false).is_some() {
            return Err(format!("pair ({s}, {d}) covered twice"));
        }
    }
    for s in 0..n {
        for d in 0..n {
            if s != d && !covered.contains_key(&(s, d)) {
                return Err(format!("pair ({s}, {d}) has neither path nor claim"));
            }
        }
    }
    if covered.len() != (n as usize) * (n as usize - 1) {
        return Err("connectivity coverage names an invalid pair".into());
    }
    for p in &cert.paths {
        if p.src >= n || p.dst >= n || p.src == p.dst {
            return Err(format!("invalid certified pair ({}, {})", p.src, p.dst));
        }
        if p.path.is_empty() || p.path.len() > spec.channels.len() {
            return Err(format!(
                "path for ({}, {}) has illegal length {}",
                p.src,
                p.dst,
                p.path.len()
            ));
        }
        let table = &spec.routes[p.dst as usize];
        let mut state = p.src as usize; // injection state
        let mut at = p.src;
        for &c in &p.path {
            if !table[state].contains(&c) {
                return Err(format!(
                    "path for ({}, {}) takes channel {c} not offered in its state",
                    p.src, p.dst
                ));
            }
            let ch = &spec.channels[c as usize];
            if ch.src != at {
                return Err(format!(
                    "path for ({}, {}) teleports: channel {c} leaves {} not {at}",
                    p.src, p.dst, ch.src
                ));
            }
            at = ch.dst;
            state = spec.channel_state(c);
        }
        if at != p.dst {
            return Err(format!(
                "path for ({}, {}) ends at {at}, not its destination",
                p.src, p.dst
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::{ChannelVertex, PathCert};

    /// Two nodes, one channel each way, straight-line routing.
    fn spec() -> GraphSpec {
        GraphSpec {
            name: "pair".into(),
            num_nodes: 2,
            channels: vec![
                ChannelVertex {
                    src: 0,
                    dst: 1,
                    label: "c0".into(),
                },
                ChannelVertex {
                    src: 1,
                    dst: 0,
                    label: "c1".into(),
                },
            ],
            deps: vec![],
            routes: vec![
                vec![vec![], vec![1], vec![], vec![]],
                vec![vec![0], vec![], vec![], vec![]],
            ],
        }
    }

    fn cert() -> Certificate {
        Certificate {
            verdict: Verdict::Acyclic {
                numbering: vec![0, 1],
            },
            paths: vec![
                PathCert {
                    src: 0,
                    dst: 1,
                    path: vec![0],
                },
                PathCert {
                    src: 1,
                    dst: 0,
                    path: vec![1],
                },
            ],
            unreachable: vec![],
        }
    }

    #[test]
    fn valid_certificate_is_accepted() {
        check(&spec(), &cert()).expect("valid certificate");
    }

    #[test]
    fn tampered_numbering_is_rejected() {
        let mut s = spec();
        s.deps = vec![(0, 1)];
        s.routes[0][3] = vec![]; // keep routes consistent
        let mut c = cert();
        c.verdict = Verdict::Acyclic {
            numbering: vec![1, 0], // reversed: edge (0,1) now decreases
        };
        let err = check(&s, &c).unwrap_err();
        assert!(err.contains("does not increase"), "{err}");
    }

    #[test]
    fn fake_cycle_is_rejected() {
        let mut c = cert();
        c.verdict = Verdict::Cyclic { cycle: vec![0, 1] };
        let err = check(&spec(), &c).unwrap_err();
        assert!(err.contains("not a dependency edge"), "{err}");
    }

    #[test]
    fn missing_pair_is_rejected() {
        let mut c = cert();
        c.paths.pop();
        let err = check(&spec(), &c).unwrap_err();
        assert!(err.contains("neither path nor claim"), "{err}");
    }

    #[test]
    fn illegal_path_step_is_rejected() {
        let mut c = cert();
        c.paths[0].path = vec![1]; // c1 is not offered at injection of node 0
        let err = check(&spec(), &c).unwrap_err();
        assert!(err.contains("not offered"), "{err}");
    }

    #[test]
    fn uncovered_route_move_is_rejected() {
        let mut s = spec();
        // Routing offers a move out of a channel state with no dep edge.
        s.routes[0][3] = vec![1];
        let err = check(&s, &cert()).unwrap_err();
        assert!(err.contains("no such edge"), "{err}");
    }
}
