//! Machine-checkable claims: the unit of `turnlint` output.
//!
//! Every combinatorial statement the paper makes (and every extension this
//! reproduction adds) is rendered as a [`Claim`]: a named check with an
//! expected value, the value actually computed, and — when the check
//! fails — a concrete *witness* (typically a channel-dependency cycle
//! rendered as the turns that form it) so the failure is debuggable
//! rather than merely detected.

use turnroute_model::{Cdg, Turn};
use turnroute_topology::ChannelId;

/// One named, machine-checkable statement with its verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Claim {
    /// Stable kebab-case identifier (the key tooling greps for).
    pub name: String,
    /// Human sentence describing what is being checked and where.
    pub detail: String,
    /// The value the paper (or the model crate's closed forms) predicts.
    pub expected: String,
    /// The value the exhaustive analysis actually computed.
    pub actual: String,
    /// Whether `actual` matched `expected`.
    pub passed: bool,
    /// Concrete counterexample when the claim failed (or, for negative
    /// controls, the witness whose *existence* makes the claim pass).
    pub witness: Option<String>,
}

impl Claim {
    /// A claim that passes exactly when `expected == actual` (compared as
    /// display strings).
    pub fn check(
        name: &str,
        detail: &str,
        expected: impl std::fmt::Display,
        actual: impl std::fmt::Display,
    ) -> Claim {
        let expected = expected.to_string();
        let actual = actual.to_string();
        Claim {
            name: name.to_string(),
            detail: detail.to_string(),
            passed: expected == actual,
            expected,
            actual,
            witness: None,
        }
    }

    /// Attach a witness (consumes and returns `self` for chaining).
    pub fn with_witness(mut self, witness: impl Into<String>) -> Claim {
        self.witness = Some(witness.into());
        self
    }

    /// One human-readable diagnostic line (two when a witness exists).
    pub fn render(&self) -> String {
        let mut line = format!(
            "{} {:<44} expected {}, got {}  ({})",
            if self.passed { "ok  " } else { "FAIL" },
            self.name,
            self.expected,
            self.actual,
            self.detail
        );
        if let Some(w) = &self.witness {
            line.push_str(&format!("\n       witness: {w}"));
        }
        line
    }
}

/// Render a CDG cycle as the sequence of channels it visits and the turns
/// taken between consecutive channels — the form the paper reasons in.
///
/// The witness a failed deadlock-freedom claim prints: each hop of the
/// cycle is `channel -> channel`, and every change of direction along it
/// is named as a turn at the node where it happens, so the offending turn
/// set can be read straight off the diagnostic.
pub fn witness_cycle(cdg: &Cdg, cycle: &[ChannelId]) -> String {
    let chans = cdg.channels();
    let path: Vec<String> = cycle.iter().map(|c| c.to_string()).collect();
    let mut turns: Vec<String> = Vec::new();
    for (k, &c) in cycle.iter().enumerate() {
        let a = &chans[c.index()];
        let b = &chans[cycle[(k + 1) % cycle.len()].index()];
        if a.dir() != b.dir() {
            turns.push(format!("{} at {}", Turn::new(a.dir(), b.dir()), a.dst()));
        }
    }
    format!(
        "channel cycle [{} -> back to {}]; turns: {}",
        path.join(" -> "),
        path[0],
        if turns.is_empty() {
            "none (straight-line wrap cycle)".to_string()
        } else {
            turns.join(", ")
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_model::TurnSet;
    use turnroute_topology::Mesh;

    #[test]
    fn check_compares_display_values() {
        let c = Claim::check("a-count", "counting things", 3, 3);
        assert!(c.passed);
        let c = Claim::check("a-count", "counting things", 3, 4);
        assert!(!c.passed);
        assert!(c.render().starts_with("FAIL"));
    }

    #[test]
    fn witness_names_the_turns_of_the_cycle() {
        let mesh = Mesh::new_2d(3, 3);
        // No prohibitions at all: the CDG is certainly cyclic.
        let cdg = Cdg::from_turn_set(&mesh, &TurnSet::all_ninety(2));
        let cycle = cdg.find_cycle().expect("unrestricted turns must cycle");
        let w = witness_cycle(&cdg, &cycle);
        assert!(w.contains("channel cycle"), "{w}");
        assert!(w.contains("turns:"), "{w}");
        assert!(w.contains("->"), "{w}");
    }
}
