//! The `turnprove` certificate format: explicit channel graphs and the
//! machine-checkable proofs emitted over them.
//!
//! A [`GraphSpec`] is the *trusted* input: a channel graph extracted
//! mechanically (see [`crate::extract`]) from a topology, a routing
//! function, a virtual-channel assignment, and an optional fault pattern.
//! Vertices are (virtual) channels; `deps` are the Dally–Seitz dependency
//! edges; `routes` is the per-destination routing relation over *states*
//! (a packet is either at its injection node or holding a channel).
//!
//! A [`Certificate`] is the *untrusted* output of the prover
//! ([`crate::prove`]): a deadlock [`Verdict`] — either a total channel
//! numbering witnessing acyclicity, or a concrete witness cycle — plus one
//! [`PathCert`] per deliverable ordered node pair. The independent checker
//! ([`crate::check`]) validates a certificate against its spec without
//! trusting anything the prover computed; only the extraction itself is
//! in the trusted computing base (see `DESIGN.md` §9).

/// One vertex of a channel graph: a unidirectional (virtual) channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelVertex {
    /// Router the channel leaves.
    pub src: u32,
    /// Router the channel enters.
    pub dst: u32,
    /// Human-readable label (`c12 n5 -> n6 (east)`, `c40 n3 -> n7 (north2)`).
    pub label: String,
}

/// An explicit channel graph: the common denominator every configuration —
/// bare turn set, named algorithm, virtual-channel assignment, fault-masked
/// relation — is lowered to before proving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSpec {
    /// Configuration name (topology × routing × faults).
    pub name: String,
    /// Number of router nodes.
    pub num_nodes: u32,
    /// The channel vertices, indexed by dense id.
    pub channels: Vec<ChannelVertex>,
    /// Dependency edges `(from, to)` between channel ids: a packet holding
    /// `from` may next request `to`.
    pub deps: Vec<(u32, u32)>,
    /// The routing relation: `routes[dest][state]` lists the channel ids a
    /// packet in `state` bound for node `dest` may acquire next. States
    /// `0..num_nodes` are injection-at-node; state `num_nodes + c` is
    /// holding channel `c`. Empty at the destination and at unreachable
    /// states.
    pub routes: Vec<Vec<Vec<u32>>>,
}

impl GraphSpec {
    /// Number of routing states per destination.
    pub fn num_states(&self) -> usize {
        self.num_nodes as usize + self.channels.len()
    }

    /// The state index for a packet holding channel `c`.
    pub fn channel_state(&self, c: u32) -> usize {
        self.num_nodes as usize + c as usize
    }

    /// Render a dependency cycle over this spec's channels as a
    /// human-readable witness line.
    pub fn render_cycle(&self, cycle: &[u32]) -> String {
        let shown: Vec<&str> = cycle
            .iter()
            .take(8)
            .map(|&c| self.channels[c as usize].label.as_str())
            .collect();
        format!(
            "channel cycle of {} [{}{} -> back to {}]",
            cycle.len(),
            shown.join(" -> "),
            if cycle.len() > 8 { " -> ..." } else { "" },
            self.channels[cycle[0] as usize].label,
        )
    }
}

/// The deadlock-freedom half of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The dependency graph is acyclic; `numbering[c]` is a total channel
    /// ordering under which every dependency edge strictly increases —
    /// exactly the paper's channel-numbering proof obligation, checkable
    /// in one pass over `deps`.
    Acyclic {
        /// One number per channel, indexed by channel id.
        numbering: Vec<u64>,
    },
    /// The dependency graph is cyclic; `cycle` is a concrete witness, each
    /// channel depending on the next and the last on the first.
    Cyclic {
        /// The channel ids along the witness cycle.
        cycle: Vec<u32>,
    },
}

impl Verdict {
    /// Whether this verdict claims acyclicity (deadlock freedom).
    pub fn is_acyclic(&self) -> bool {
        matches!(self, Verdict::Acyclic { .. })
    }
}

/// A connectivity certificate for one ordered node pair: an explicit legal
/// path under the routing relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathCert {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// The channels traversed, in order; the first must be offered at
    /// injection, every later one at the state holding its predecessor,
    /// and the last must enter `dst`.
    pub path: Vec<u32>,
}

/// Everything the prover claims about one [`GraphSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The deadlock verdict with its proof object.
    pub verdict: Verdict,
    /// One path certificate per deliverable ordered pair, in `(src, dst)`
    /// lexicographic order.
    pub paths: Vec<PathCert>,
    /// Ordered pairs the prover claims are *not* deliverable (possible
    /// only under faults). Unreachability carries no checkable witness —
    /// the checker verifies coverage and leaves the claim to the driver's
    /// expectations (see `DESIGN.md` §9 on the trust boundary).
    pub unreachable: Vec<(u32, u32)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> GraphSpec {
        GraphSpec {
            name: "tiny".into(),
            num_nodes: 2,
            channels: vec![
                ChannelVertex {
                    src: 0,
                    dst: 1,
                    label: "c0 n0 -> n1".into(),
                },
                ChannelVertex {
                    src: 1,
                    dst: 0,
                    label: "c1 n1 -> n0".into(),
                },
            ],
            deps: vec![],
            routes: vec![
                vec![vec![], vec![1], vec![], vec![]],
                vec![vec![0], vec![], vec![], vec![]],
            ],
        }
    }

    #[test]
    fn state_indexing() {
        let spec = tiny_spec();
        assert_eq!(spec.num_states(), 4);
        assert_eq!(spec.channel_state(1), 3);
    }

    #[test]
    fn cycle_rendering_names_labels() {
        let spec = tiny_spec();
        let w = spec.render_cycle(&[0, 1]);
        assert!(w.contains("channel cycle of 2"), "{w}");
        assert!(w.contains("c0 n0 -> n1"), "{w}");
        assert!(w.contains("back to c0"), "{w}");
    }
}
