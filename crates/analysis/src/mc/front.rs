//! Injection fronts: the bounded packet populations turncheck explores.
//!
//! A model-checking run is parameterized by a *front* — the complete set
//! of packets that may ever enter the network. The explorer owns *when*
//! they enter (it branches over injection subsets), the front only fixes
//! *what* can enter. Two shapes matter:
//!
//! * **Exchange fronts** pit antipodal pairs against each other — the
//!   densest contention a handful of packets can produce, and invariant
//!   under every mesh symmetry, so the stabilizer reduction gets the full
//!   group.
//! * **Witness fronts** are derived from the abstract proof: for a
//!   census-unsafe turn set, take the CDG's shortest dependency cycle
//!   `c_1 … c_k` and give packet *i* the two-hop journey `src(c_i) →
//!   dst(c_{i+1})`. Consecutive cycle channels share a Cdg edge, so both
//!   hops are turn-legal and productive — the front is *built to be able
//!   to* re-enact the proof's cycle, and the refinement check then
//!   verifies the deadlock the explorer actually finds lies on it.

use turnroute_model::{Cdg, TurnSet};
use turnroute_topology::{ChannelId, Mesh, NodeId, Topology};

/// One packet the explorer may inject: fixed source, destination, and
/// flit count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontPacket {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Length in flits.
    pub len: u32,
}

impl FrontPacket {
    /// A `len`-flit packet from `src` to `dst` (by node index).
    pub fn new(src: u32, dst: u32, len: u32) -> FrontPacket {
        FrontPacket {
            src: NodeId(src),
            dst: NodeId(dst),
            len,
        }
    }
}

/// The corner-exchange front of a 2D mesh: both diagonal corner pairs
/// exchange `len`-flit packets. Four packets whose minimal quadrants
/// cover every abstract cycle, and a front invariant under the whole
/// square group.
pub fn corner_exchange(mesh: &Mesh, len: u32) -> Vec<FrontPacket> {
    assert_eq!(mesh.num_dims(), 2);
    let (mx, my) = (mesh.radices()[0] - 1, mesh.radices()[1] - 1);
    let corner = |x: u16, y: u16| mesh.node_at_coords(&[x, y]).0;
    [
        (corner(0, 0), corner(mx, my)),
        (corner(mx, my), corner(0, 0)),
        (corner(mx, 0), corner(0, my)),
        (corner(0, my), corner(mx, 0)),
    ]
    .iter()
    .map(|&(s, d)| FrontPacket::new(s, d, len))
    .collect()
}

/// The all-pairs exchange front of an arbitrary topology: every node
/// sends one `len`-flit packet to its antipode (the node at maximal
/// minimal-hop distance, lowest id breaking ties). Used for the ring and
/// hypercube configurations.
pub fn antipodal_exchange(topo: &dyn Topology, len: u32) -> Vec<FrontPacket> {
    let n = topo.num_nodes();
    (0..n)
        .map(|v| {
            let src = NodeId(v as u32);
            let dst = (0..n)
                .map(|w| NodeId(w as u32))
                .filter(|&w| w != src)
                .max_by_key(|&w| (topo.min_hops(src, w), std::cmp::Reverse(w.0)))
                .expect("at least two nodes");
            FrontPacket::new(src.0, dst.0, len)
        })
        .collect()
}

/// A witness front plus the proof cycle it re-enacts, for a
/// census-unsafe turn set; `None` when the turn set's CDG is acyclic
/// (i.e. for safe sets, which get exchange fronts instead).
pub fn witness_front(mesh: &Mesh, set: &TurnSet, len: u32) -> Option<(Vec<FrontPacket>, Witness)> {
    let cdg = Cdg::from_turn_set(mesh, set);
    let cycle = cdg.find_shortest_cycle()?;
    let chans = cdg.channels();
    let front = (0..cycle.len())
        .map(|i| {
            let c = chans[cycle[i].index()];
            let next = chans[cycle[(i + 1) % cycle.len()].index()];
            // c -> next is a Cdg edge: dst(c) = src(next), and the turn
            // from c's direction onto next's is allowed, so this two-hop
            // journey is routable and entirely productive.
            debug_assert_eq!(c.dst(), next.src());
            FrontPacket::new(c.src().0, next.dst().0, len)
        })
        .collect();
    Some((front, Witness { cycle, cdg }))
}

/// The abstract side of the refinement check: the shortest proof cycle
/// and the CDG it lives in.
pub struct Witness {
    /// The shortest dependency cycle (each channel waits on the next,
    /// wrapping).
    pub cycle: Vec<ChannelId>,
    /// The turn-set CDG the cycle was found in.
    pub cdg: Cdg,
}

impl Witness {
    /// The cycle as engine channel slots, in wait order.
    pub fn cycle_slots(&self, mesh: &Mesh) -> Vec<usize> {
        self.cycle
            .iter()
            .map(|&c| {
                let ch = self.cdg.channels()[c.index()];
                mesh.channel_slot(ch.src(), ch.dir())
            })
            .collect()
    }

    /// Whether `slots` (an ordered wait cycle from the engine) *refines*
    /// the proof cycle: every consecutive engine wait maps onto a CDG
    /// dependency edge, and the engine cycle visits exactly the proof
    /// cycle's channels (as sets, any rotation/orientation).
    pub fn matches(&self, mesh: &Mesh, slots: &[usize]) -> bool {
        if slots.len() != self.cycle.len() {
            return false;
        }
        let proof: Vec<usize> = self.cycle_slots(mesh);
        let mut sorted_proof = proof.clone();
        sorted_proof.sort_unstable();
        let mut sorted_got = slots.to_vec();
        sorted_got.sort_unstable();
        if sorted_proof != sorted_got {
            return false;
        }
        // Same member set; check the engine's wait order traces CDG
        // edges. Build slot -> channel id for the lookup.
        let chans = self.cdg.channels();
        let slot_of = |cid: ChannelId| {
            let ch = chans[cid.index()];
            mesh.channel_slot(ch.src(), ch.dir())
        };
        let chan_at = |slot: usize| {
            (0..chans.len())
                .map(|i| ChannelId(i as u32))
                .find(|&c| slot_of(c) == slot)
                .expect("cycle member is a network channel")
        };
        slots.iter().enumerate().all(|(i, &s)| {
            let c = chan_at(s);
            let n = chan_at(slots[(i + 1) % slots.len()]);
            self.cdg.successors(c).contains(&n.0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_model::cycle::two_turn_census;

    #[test]
    fn corner_exchange_is_four_antipodal_pairs() {
        let mesh = Mesh::new_2d(3, 3);
        let front = corner_exchange(&mesh, 2);
        assert_eq!(front.len(), 4);
        for p in &front {
            assert_eq!(mesh.min_hops(p.src, p.dst), 4);
        }
        // It really is an exchange: sources and destinations coincide.
        let mut srcs: Vec<u32> = front.iter().map(|p| p.src.0).collect();
        let mut dsts: Vec<u32> = front.iter().map(|p| p.dst.0).collect();
        srcs.sort_unstable();
        dsts.sort_unstable();
        assert_eq!(srcs, dsts);
    }

    #[test]
    fn witness_fronts_exist_exactly_for_unsafe_sets() {
        // On 3×3 — the smallest mesh with the paper's 12/4 split; every
        // 2×2 two-turn CDG is acyclic, so witness fronts live on 3×3.
        let mesh = Mesh::new_2d(3, 3);
        for (set, free) in two_turn_census(&mesh).entries {
            let w = witness_front(&mesh, &set, 2);
            assert_eq!(w.is_none(), free, "witness iff census-unsafe");
            if let Some((front, witness)) = w {
                assert_eq!(front.len(), witness.cycle.len());
                // Every witness packet is a two-hop journey along the
                // cycle — both hops productive by construction.
                for p in &front {
                    assert_eq!(mesh.min_hops(p.src, p.dst), 2);
                }
                // The proof cycle matches itself under the refinement
                // predicate (and any rotation of itself).
                let slots = witness.cycle_slots(&mesh);
                assert!(witness.matches(&mesh, &slots));
                let mut rotated = slots.clone();
                rotated.rotate_left(1);
                assert!(witness.matches(&mesh, &rotated));
                // And not a mangled order of length > 2.
                if slots.len() > 3 {
                    let mut swapped = slots.clone();
                    swapped.swap(0, 2);
                    assert!(!witness.matches(&mesh, &swapped));
                }
            }
        }
    }

    #[test]
    fn antipodal_exchange_covers_every_node() {
        let ring = turnroute_topology::Torus::new(4, 1);
        let front = antipodal_exchange(&ring, 2);
        assert_eq!(front.len(), 4);
        for p in &front {
            assert_eq!(ring.min_hops(p.src, p.dst), 2);
        }
    }
}
