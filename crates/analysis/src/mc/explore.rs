//! The breadth-first reachable-state explorer.
//!
//! One search node is one *global engine state* plus the set of front
//! packets not yet injected. Successors come from two nested
//! enumerations: which pending subset to inject this cycle (all `2^k`
//! subsets when certifying — a head with a free productive output *must*
//! take it, so delayed injection reaches wedges all-at-once injection
//! cannot), and every arbitration resolution of one scripted engine step
//! (the [`ChoiceScript`] odometer). Every transition the explorer takes
//! is one real `step_with_choices` of the production engine.
//!
//! Soundness notes, mirrored in DESIGN.md §13:
//!
//! * The visited set keys on the **full canonical encoding**, not a
//!   hash — FNV only buckets; collisions can never merge distinct
//!   states and silently prune reachable space.
//! * A state counts as **stuck** (deadlocked) only when nothing remains
//!   to inject, flits are still in flight, and *every* (injection,
//!   script) successor re-encodes to the state itself. With packets
//!   still pending, injection always changes the pending mask, so stuck
//!   detection needs no special-casing of queues.
//! * Time, RNG, and statistics are excluded from the encoding (see
//!   [`super::encode`]); the step relation is invariant under all of
//!   them in the scripted configuration (zero injection rate, zero
//!   routing delay), so merging states that differ only there is sound.

use super::driver::McEngine;
use super::encode::{canonical, extract_view, EncodeCtx, FnvBuild};
use super::front::FrontPacket;
use std::collections::{HashSet, VecDeque};
use turnroute_sim::ChoiceScript;

/// Knobs for one exploration.
pub(crate) struct ExploreParams {
    /// Branch over every subset of the pending front each cycle
    /// (required for certification); `false` injects everything still
    /// pending at once (sufficient for refutation, much smaller space).
    pub enumerate_injection: bool,
    /// Return as soon as one stuck state is found.
    pub stop_at_first_deadlock: bool,
    /// State budget; exceeding it ends the search with `complete =
    /// false`.
    pub max_states: usize,
}

/// One explored transition: the front packets injected before the step
/// and the arbitration digits resolving it.
#[derive(Debug, Clone)]
pub(crate) struct Action {
    /// Front indices injected this cycle, in index order.
    pub inject: Vec<u32>,
    /// The choice-script digits of the step.
    pub digits: Vec<u32>,
}

/// A reachable stuck state, with everything needed to re-enact it.
pub(crate) struct Deadlock {
    /// The engine's ordered waits-for cycle at the stuck state (empty
    /// when the engine exposes none — e.g. a routing dead-end wedge).
    pub cycle_slots: Vec<usize>,
    /// The action sequence from the empty network to the stuck state.
    pub trace: Vec<Action>,
}

/// What one exploration found.
pub(crate) struct ExploreOutcome {
    /// Distinct canonical states reached.
    pub states: usize,
    /// Engine steps taken (one per (injection, script) expansion).
    pub transitions: usize,
    /// Whether the reachable space was exhausted.
    pub complete: bool,
    /// The largest misroute counter observed on any packet anywhere.
    pub max_misroutes: u32,
    /// Stuck states found.
    pub deadlocks: usize,
    /// The first stuck state, with its trace.
    pub first_deadlock: Option<Deadlock>,
}

/// Per-state bookkeeping for counterexample reconstruction.
struct Meta {
    parent: u32,
    action: Action,
}

/// A frontier entry: a state still to expand.
struct Rec<S> {
    id: u32,
    snap: S,
    /// `order[p]` = front index of engine packet id `p`.
    order: Vec<u32>,
    /// Front indices not yet injected.
    pending: u32,
    canon: Vec<u8>,
}

/// Explore every state reachable from `engine`'s current (empty)
/// configuration under injections from `front`.
pub(crate) fn explore<E: McEngine>(
    engine: &mut E,
    front: &[FrontPacket],
    ctx: &EncodeCtx,
    params: &ExploreParams,
) -> ExploreOutcome {
    assert!(front.len() <= 32, "front indices are a u32 bitmask");
    let mut visited: HashSet<Vec<u8>, FnvBuild> = HashSet::with_hasher(FnvBuild);
    let mut metas: Vec<Meta> = Vec::new();
    let mut queue: VecDeque<Rec<E::Snap>> = VecDeque::new();
    let mut out = ExploreOutcome {
        states: 0,
        transitions: 0,
        complete: true,
        max_misroutes: 0,
        deadlocks: 0,
        first_deadlock: None,
    };

    let root_pending: u32 = if front.len() == 32 {
        u32::MAX
    } else {
        (1u32 << front.len()) - 1
    };
    let root_canon = canonical(&extract_view(engine, &[], root_pending, ctx), ctx);
    visited.insert(root_canon.clone());
    metas.push(Meta {
        parent: u32::MAX,
        action: Action {
            inject: Vec::new(),
            digits: Vec::new(),
        },
    });
    queue.push_back(Rec {
        id: 0,
        snap: engine.snapshot(),
        order: Vec::new(),
        pending: root_pending,
        canon: root_canon,
    });
    out.states = 1;

    while let Some(rec) = queue.pop_front() {
        engine.restore(&rec.snap);
        if rec.pending == 0 && engine.is_idle() {
            continue; // everything delivered: a terminal success state
        }
        if out.states >= params.max_states {
            out.complete = false;
            break;
        }

        // Injection subsets, largest first so the all-at-once successor
        // (the one refutation mode uses exclusively) is expanded first.
        let masks: Vec<u32> = if params.enumerate_injection {
            let mut ms = Vec::new();
            let mut m = rec.pending;
            loop {
                ms.push(m);
                if m == 0 {
                    break;
                }
                m = (m - 1) & rec.pending;
            }
            ms
        } else {
            vec![rec.pending]
        };

        let mut any_progress = false;
        for mask in masks {
            let mut script = ChoiceScript::new(Vec::new());
            loop {
                engine.restore(&rec.snap);
                let mut order = rec.order.clone();
                let mut injected = Vec::new();
                for (i, p) in front.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        engine.inject(p.src, p.dst, p.len);
                        order.push(i as u32);
                        injected.push(i as u32);
                    }
                }
                engine.step_with_choices(&mut script);
                out.transitions += 1;
                let pending = rec.pending & !mask;
                let canon = canonical(&extract_view(engine, &order, pending, ctx), ctx);
                for p in 0..order.len() {
                    out.max_misroutes = out.max_misroutes.max(engine.packet_misroutes(p as u32));
                }
                if canon != rec.canon {
                    any_progress = true;
                    if visited.insert(canon.clone()) {
                        let id = metas.len() as u32;
                        metas.push(Meta {
                            parent: rec.id,
                            action: Action {
                                inject: injected.clone(),
                                digits: script.digits().to_vec(),
                            },
                        });
                        out.states += 1;
                        queue.push_back(Rec {
                            id,
                            snap: engine.snapshot(),
                            order,
                            pending,
                            canon,
                        });
                    }
                }
                match script.next_script() {
                    Some(next) => script = next,
                    None => break,
                }
            }
        }

        if rec.pending == 0 && !any_progress {
            // Nothing to inject, flits in flight, every successor is the
            // state itself: a reachable deadlock.
            out.deadlocks += 1;
            if out.first_deadlock.is_none() {
                engine.restore(&rec.snap);
                out.first_deadlock = Some(Deadlock {
                    cycle_slots: engine.deadlock_cycle(),
                    trace: trace_to(&metas, rec.id),
                });
            }
            if params.stop_at_first_deadlock {
                out.complete = false;
                break;
            }
        }
    }
    out
}

/// The root-to-`id` action sequence.
fn trace_to(metas: &[Meta], id: u32) -> Vec<Action> {
    let mut trace = Vec::new();
    let mut cur = id;
    while cur != u32::MAX {
        let m = &metas[cur as usize];
        if m.parent == u32::MAX {
            break; // the root's empty action
        }
        trace.push(m.action.clone());
        cur = m.parent;
    }
    trace.reverse();
    trace
}
