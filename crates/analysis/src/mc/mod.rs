//! `turncheck` — explicit-state model checking that pins the engines to
//! their proofs.
//!
//! The rest of this crate proves properties of *abstractions*: CDG
//! acyclicity, channel numberings, progress potentials. This module
//! closes the loop by exhaustively driving the **production engines**
//! through every reachable global state of small configurations and
//! checking that what the proofs promise is what the engines do:
//!
//! * every census-safe two-turn prohibition yields **zero** reachable
//!   deadlock states (bounded certification over an injection front);
//! * every census-unsafe prohibition yields a **concrete** reachable
//!   deadlock whose circular wait maps, edge for edge, onto the CDG
//!   proof cycle (the refinement check);
//! * misroute counters never exceed the intrinsic bound `turnlint`'s
//!   progress proof computes (progress under fairness);
//! * every deadlock found is emitted as a replayable [`Scenario`] the
//!   simulator re-executes to the same stuck state — recorded to a TTRL
//!   log `turnstat` can replay.
//!
//! The trust boundary is deliberately thin: the checker re-models
//! *nothing*. Transitions are real [`turnroute_sim::Sim`] /
//! [`turnroute_vc::VcSim`] steps behind the scripted-arbitration seam,
//! and the checker only encodes, hashes, and compares the states those
//! steps produce. See DESIGN.md §13 for the soundness argument.

mod driver;
mod encode;
mod explore;
mod front;
mod scenario;

pub use driver::BuggyRouter;
pub use front::{antipodal_exchange, corner_exchange, witness_front, FrontPacket, Witness};
pub use scenario::{replay_wormhole, ReplayOutcome, Scenario, ScenarioStep};

use crate::routing::TurnSetRouting;
use driver::McEngine;
use encode::EncodeCtx;
use explore::{explore, ExploreOutcome, ExploreParams};
use turnroute_model::cycle::two_turn_census;
use turnroute_model::livelock::check_progress;
use turnroute_model::verifier::Check;
use turnroute_model::{RoutingFunction, TurnSet};
use turnroute_routing::{hypercube::e_cube, mesh2d, torus::NegativeFirstTorus, RoutingMode};
use turnroute_sim::{LengthDist, Sim, SimConfig};
use turnroute_topology::{Hypercube, Mesh, NodeId, Topology, Torus};
use turnroute_traffic::Uniform;
use turnroute_vc::{DoubleYAdaptive, VcSim};

/// State budget for one certification run; hitting it marks the entry
/// incomplete (and failed). Generous — the largest matrix entry (3×3,
/// four 2-flit packets, subset injection) stays well under it.
const MAX_STATES: usize = 4_000_000;

/// Options for a `turncheck` run.
#[derive(Debug, Clone, Default)]
pub struct McOptions {
    /// Skip the 3×3 mesh census (CI's fast path).
    pub quick: bool,
    /// Self-test: verify only the planted [`BuggyRouter`] configuration,
    /// claiming it deadlock free — the run must FAIL, proving the
    /// checker can see a real arbitration bug.
    pub inject_bad: bool,
}

/// One verified configuration.
#[derive(Debug, Clone)]
pub struct McEntry {
    /// Human-readable configuration name.
    pub name: String,
    /// `"sim"` (wormhole) or `"vc"` (virtual-channel engine).
    pub engine: &'static str,
    /// The property claimed: no reachable deadlock (true) or a reachable
    /// deadlock refining the proof witness (false).
    pub expect_deadlock_free: bool,
    /// Distinct canonical states reached.
    pub states: usize,
    /// Engine steps taken.
    pub transitions: usize,
    /// Whether the bounded state space was exhausted.
    pub complete: bool,
    /// Symmetry group order used for canonicalization (1 = none).
    pub group_order: usize,
    /// Whether a reachable deadlock state was found.
    pub deadlock: bool,
    /// Unsafe entries: whether the engine's waits-for cycle maps edge
    /// for edge onto CDG dependency edges of the turn set.
    pub refinement_ok: Option<bool>,
    /// Unsafe entries: whether the engine's cycle is exactly the
    /// shortest proof cycle (any rotation) — the strongest refinement.
    pub witness_match: Option<bool>,
    /// Unsafe entries: whether the counterexample scenario replayed on a
    /// fresh engine to a state the engine's own detector declared stuck.
    pub replay_stuck: Option<bool>,
    /// Largest misroute counter observed anywhere in the state space.
    pub max_misroutes: u32,
    /// The intrinsic bound `max_misroutes` is checked against, when the
    /// configuration has one (0 for minimal routing).
    pub misroute_bound: Option<u32>,
    /// The replayable counterexample, for deadlock entries.
    pub scenario: Option<Scenario>,
}

impl McEntry {
    /// Whether this entry's claim was verified.
    pub fn ok(&self) -> bool {
        let misroutes_ok = self.misroute_bound.is_none_or(|b| self.max_misroutes <= b);
        if self.expect_deadlock_free {
            self.complete && !self.deadlock && misroutes_ok
        } else {
            self.deadlock
                && self.refinement_ok == Some(true)
                && self.witness_match != Some(false)
                && self.replay_stuck == Some(true)
        }
    }
}

/// The complete result of a `turncheck` run.
pub struct McReport {
    /// One entry per verified configuration.
    pub entries: Vec<McEntry>,
    /// The sealed TTRL log of the first counterexample replay, for the
    /// `mc_counterexample.ttr` artifact `turnstat` replays in CI.
    pub counterexample_ttr: Option<Vec<u8>>,
}

impl McReport {
    /// Whether every entry verified its claim.
    pub fn passed(&self) -> bool {
        self.entries.iter().all(McEntry::ok)
    }

    /// Render the human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("turncheck: explicit-state model checking of the production engines\n");
        for e in &self.entries {
            let claim = if e.expect_deadlock_free {
                "deadlock-free"
            } else {
                "deadlocks-as-proven"
            };
            let extra = match (e.refinement_ok, e.replay_stuck) {
                (Some(r), Some(p)) => format!(
                    ", refinement {}, replay {}{}",
                    tick(r),
                    tick(p),
                    match e.witness_match {
                        Some(w) => format!(", witness {}", tick(w)),
                        None => String::new(),
                    }
                ),
                _ => String::new(),
            };
            let bound = match e.misroute_bound {
                Some(b) => format!(", misroutes {}/{}", e.max_misroutes, b),
                None => String::new(),
            };
            out.push_str(&format!(
                "  [{}] {} ({}, {}): {} states, {} transitions, sym {}{}{}{}\n",
                if e.ok() { "PASS" } else { "FAIL" },
                e.name,
                e.engine,
                claim,
                e.states,
                e.transitions,
                e.group_order,
                if e.complete { "" } else { ", INCOMPLETE" },
                bound,
                extra,
            ));
        }
        let (pass, total) = (
            self.entries.iter().filter(|e| e.ok()).count(),
            self.entries.len(),
        );
        out.push_str(&format!(
            "turncheck: {}/{} configurations verified — {}\n",
            pass,
            total,
            if self.passed() {
                "all engine behaviors pinned to their proofs"
            } else {
                "MODEL CHECKING FAILED"
            }
        ));
        out
    }

    /// Render the JSON artifact.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                format!(
                    "{{\"name\":{:?},\"engine\":{:?},\"expect_deadlock_free\":{},\
                     \"states\":{},\"transitions\":{},\"complete\":{},\"group_order\":{},\
                     \"deadlock\":{},\"refinement_ok\":{},\"witness_match\":{},\
                     \"replay_stuck\":{},\"max_misroutes\":{},\"misroute_bound\":{},\
                     \"scenario\":{},\"ok\":{}}}",
                    e.name,
                    e.engine,
                    e.expect_deadlock_free,
                    e.states,
                    e.transitions,
                    e.complete,
                    e.group_order,
                    e.deadlock,
                    opt_bool(e.refinement_ok),
                    opt_bool(e.witness_match),
                    opt_bool(e.replay_stuck),
                    e.max_misroutes,
                    e.misroute_bound
                        .map_or("null".to_string(), |b| b.to_string()),
                    e.scenario
                        .as_ref()
                        .map_or("null".to_string(), Scenario::to_json),
                    e.ok(),
                )
            })
            .collect();
        format!(
            "{{\"tool\":\"turncheck\",\"passed\":{},\"entries\":[{}]}}",
            self.passed(),
            entries.join(",")
        )
    }
}

fn tick(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "FAIL"
    }
}

fn opt_bool(b: Option<bool>) -> String {
    b.map_or("null".to_string(), |v| v.to_string())
}

/// The exploration configuration: manual injection only, the engine's
/// own deadlock detector parked out of reach (the explorer judges
/// stuckness itself, and a mid-exploration detector trip would make
/// excluded timers behaviorally observable).
fn mc_config(buffer_depth: u32, misroute_budget: u32) -> SimConfig {
    SimConfig::builder()
        .injection_rate(0.0)
        .lengths(LengthDist::Fixed(2))
        .deadlock_threshold(1 << 60)
        .misroute_budget(misroute_budget)
        .buffer_depth(buffer_depth)
        .build()
}

fn set_label(set: &TurnSet) -> String {
    let turns: Vec<String> = set
        .prohibited_ninety()
        .iter()
        .map(|t| t.to_string())
        .collect();
    format!("prohibit {}", turns.join(" + "))
}

/// Exhaustively certify one census-safe turn set deadlock free on the
/// `side`×`side` mesh: corner-exchange front, full injection-subset
/// nondeterminism, every arbitration resolution, symmetry-reduced.
/// Public so the `mc_small_mesh` benchmark can time a single entry.
pub fn certify_set(side: u16, set: &TurnSet) -> McEntry {
    let mesh = Mesh::new_2d(side, side);
    let routing = TurnSetRouting::new(set_label(set), set.clone(), &mesh);
    let front = corner_exchange(&mesh, 2);
    let ctx = EncodeCtx::mesh_stabilizer(&mesh, set, &front);
    let pattern = Uniform::new();
    let mut sim = Sim::new(&mesh, &routing, &pattern, mc_config(1, 0));
    let outcome = explore(
        &mut sim,
        &front,
        &ctx,
        &ExploreParams {
            enumerate_injection: true,
            stop_at_first_deadlock: false,
            max_states: MAX_STATES,
        },
    );
    entry_from(
        format!("mesh{side} {}", set_label(set)),
        "sim",
        true,
        ctx.group_order(),
        &outcome,
    )
}

/// Refute one census-unsafe turn set on the `side`×`side` mesh: drive
/// the engine to a reachable deadlock from the witness front, check the
/// circular wait refines the CDG proof cycle, and replay the scenario.
fn refute_set(side: u16, set: &TurnSet, ttr: &mut Option<Vec<u8>>) -> McEntry {
    let mesh = Mesh::new_2d(side, side);
    // Single-flit packets: a 2-flit worm would still have its tail in
    // the injection channel while its head holds the first cycle
    // channel, blocking front packets that share a source router with
    // another cycle channel. One flit = one held channel, exactly the
    // abstract token of the CDG argument.
    let (front, witness) =
        witness_front(&mesh, set, 1).expect("census-unsafe sets have a proof cycle");
    let routing = TurnSetRouting::new(set_label(set), set.clone(), &mesh);
    let ctx = EncodeCtx::mesh_stabilizer(&mesh, set, &front);
    let cfg = mc_config(1, 0);
    let pattern = Uniform::new();
    let mut sim = Sim::new(&mesh, &routing, &pattern, cfg.clone());
    let outcome = explore(
        &mut sim,
        &front,
        &ctx,
        &ExploreParams {
            enumerate_injection: false,
            stop_at_first_deadlock: true,
            max_states: MAX_STATES,
        },
    );
    let mut entry = entry_from(
        format!("mesh{side} {}", set_label(set)),
        "sim",
        false,
        ctx.group_order(),
        &outcome,
    );
    if let Some(dl) = &outcome.first_deadlock {
        let refinement = !dl.cycle_slots.is_empty() && {
            // Every consecutive engine wait is a CDG dependency edge —
            // checked against the turn set's own dependency graph.
            witness.matches(&mesh, &dl.cycle_slots) || consecutive_edges_ok(&witness, &mesh, dl)
        };
        entry.refinement_ok = Some(refinement);
        entry.witness_match = Some(witness.matches(&mesh, &dl.cycle_slots));
        let scenario = Scenario::from_deadlock(dl);
        let threshold = 32 + scenario.steps.len() as u64;
        let replay = replay_wormhole(&mesh, &routing, &front, &cfg, &scenario, threshold);
        entry.replay_stuck = Some(replay.stuck && replay.delivered < front.len() as u64);
        if ttr.is_none() {
            *ttr = Some(replay.ttr);
        }
        entry.scenario = Some(scenario);
    }
    entry
}

/// Weaker half of the refinement predicate for larger meshes: the
/// engine's wait cycle need not be the *shortest* proof cycle, but every
/// edge of it must exist in the turn set's CDG.
fn consecutive_edges_ok(witness: &Witness, mesh: &Mesh, dl: &explore::Deadlock) -> bool {
    let chans = witness.cdg.channels();
    let chan_at = |slot: usize| {
        chans
            .iter()
            .find(|c| mesh.channel_slot(c.src(), c.dir()) == slot)
            .map(|c| c.id())
    };
    !dl.cycle_slots.is_empty()
        && dl.cycle_slots.iter().enumerate().all(|(i, &s)| {
            let next = dl.cycle_slots[(i + 1) % dl.cycle_slots.len()];
            match (chan_at(s), chan_at(next)) {
                (Some(a), Some(b)) => witness.cdg.successors(a).contains(&b.0),
                _ => false,
            }
        })
}

fn entry_from(
    name: String,
    engine: &'static str,
    expect_free: bool,
    group_order: usize,
    outcome: &ExploreOutcome,
) -> McEntry {
    McEntry {
        name,
        engine,
        expect_deadlock_free: expect_free,
        states: outcome.states,
        transitions: outcome.transitions,
        complete: outcome.complete,
        group_order,
        deadlock: outcome.deadlocks > 0,
        refinement_ok: None,
        witness_match: None,
        replay_stuck: None,
        max_misroutes: outcome.max_misroutes,
        misroute_bound: if expect_free { Some(0) } else { None },
        scenario: None,
    }
}

/// Certify a configuration on an arbitrary wormhole engine with no
/// symmetry reduction.
fn certify_plain<E: McEngine>(
    name: String,
    engine_kind: &'static str,
    engine: &mut E,
    front: &[FrontPacket],
    num_nodes: usize,
    misroute_bound: u32,
) -> McEntry {
    let ctx = EncodeCtx::identity(engine.num_slots(), num_nodes, front.len());
    let outcome = explore(
        engine,
        front,
        &ctx,
        &ExploreParams {
            enumerate_injection: true,
            stop_at_first_deadlock: false,
            max_states: MAX_STATES,
        },
    );
    let mut e = entry_from(name, engine_kind, true, 1, &outcome);
    e.misroute_bound = Some(misroute_bound);
    e
}

/// Run the full `turncheck` matrix.
pub fn run(opts: &McOptions) -> McReport {
    let mut entries = Vec::new();
    let mut ttr: Option<Vec<u8>> = None;

    if opts.inject_bad {
        entries.push(inject_bad_entry());
        return McReport {
            entries,
            counterexample_ttr: None,
        };
    }

    // The census, exhaustively. Classification comes from the 3×3 mesh —
    // the smallest that exhibits the paper's 12/4 split: on 2×2 every
    // two-turn CDG is acyclic (the complex S-shaped cycles of Figure 4
    // need three columns), and the four paper-unsafe sets are not even
    // connected there (both turns between two positive directions gone
    // means no diagonal journey exists at all).
    let census = two_turn_census(&Mesh::new_2d(3, 3));
    let sides: &[u16] = if opts.quick { &[2] } else { &[2, 3] };
    for &side in sides {
        for (set, free) in &census.entries {
            if *free {
                entries.push(certify_set(side, set));
            }
        }
    }
    // Refutations always run on 3×3, the smallest mesh where the proof
    // cycle exists; they are cheap (all-at-once injection, stop at the
    // first deadlock), so quick mode keeps them too.
    for (set, free) in &census.entries {
        if !free {
            entries.push(refute_set(3, set, &mut ttr));
        }
    }

    // Ring (1D torus): negative-first with the wraparound classification.
    {
        let ring = Torus::new(4, 1);
        let routing = NegativeFirstTorus::new(1);
        let front = antipodal_exchange(&ring, 2);
        let pattern = Uniform::new();
        let mut sim = Sim::new(&ring, &routing, &pattern, mc_config(1, 0));
        entries.push(certify_plain(
            "ring4 negative-first-torus".to_string(),
            "sim",
            &mut sim,
            &front,
            4,
            0,
        ));
    }

    // Hypercube-2: dimension-ordered e-cube.
    {
        let cube = Hypercube::new(2);
        let routing = e_cube(2);
        let front = antipodal_exchange(&cube, 2);
        let pattern = Uniform::new();
        let mut sim = Sim::new(&cube, &routing, &pattern, mc_config(1, 0));
        entries.push(certify_plain(
            "hypercube2 e-cube".to_string(),
            "sim",
            &mut sim,
            &front,
            4,
            0,
        ));
    }

    // The virtual-channel engine: double-y adaptive on the 2×2 mesh.
    {
        let mesh = Mesh::new_2d(2, 2);
        let routing = DoubleYAdaptive::new();
        let front = corner_exchange(&mesh, 2);
        let pattern = Uniform::new();
        let mut sim = VcSim::new(&mesh, &routing, &pattern, mc_config(1, 0));
        entries.push(certify_plain(
            "mesh2 double-y adaptive".to_string(),
            "vc",
            &mut sim,
            &front,
            4,
            0,
        ));
    }

    // Deeper buffers: west-first with 2-flit buffers (toward virtual
    // cut-through; the snapshot seam must hold regardless of depth).
    {
        let mesh = Mesh::new_2d(2, 2);
        let set = mesh2d::west_first(RoutingMode::Minimal)
            .turn_set(2)
            .expect("west-first has a turn set");
        let routing = TurnSetRouting::new("west-first".to_string(), set, &mesh);
        let front = corner_exchange(&mesh, 2);
        let pattern = Uniform::new();
        let mut sim = Sim::new(&mesh, &routing, &pattern, mc_config(2, 0));
        entries.push(certify_plain(
            "mesh2 west-first buffers=2".to_string(),
            "sim",
            &mut sim,
            &front,
            4,
            0,
        ));
    }

    // Progress under fairness: nonminimal west-first must keep every
    // reachable misroute counter within the intrinsic bound the static
    // progress proof computes — with budget above the bound, so the
    // engine is not doing the limiting.
    {
        let mesh = Mesh::new_2d(2, 2);
        let routing = mesh2d::west_first(RoutingMode::Nonminimal);
        let progress = check_progress(&mesh, &routing);
        let bound = progress.max_misroutes as u32;
        let bounded = matches!(progress.bounded, Check::Passed);
        let front = corner_exchange(&mesh, 2);
        let pattern = Uniform::new();
        let mut sim = Sim::new(&mesh, &routing, &pattern, mc_config(1, bound + 2));
        let mut e = certify_plain(
            format!("mesh2 west-first nonminimal (bound {bound})"),
            "sim",
            &mut sim,
            &front,
            4,
            bound,
        );
        // A failed progress proof would make the bound meaningless.
        e.complete = e.complete && bounded;
        entries.push(e);
    }

    McReport {
        entries,
        counterexample_ttr: ttr,
    }
}

/// The `--inject-bad` self-test: west-first with the turn filter skipped
/// at router n1, *claimed* deadlock free. The claim must fail — the
/// explorer reaches the dead-end wedge the skipped filter creates — or
/// the checker is blind.
fn inject_bad_entry() -> McEntry {
    let mesh = Mesh::new_2d(2, 2);
    let set = mesh2d::west_first(RoutingMode::Minimal)
        .turn_set(2)
        .expect("west-first has a turn set");
    let inner = TurnSetRouting::new("west-first".to_string(), set, &mesh);
    let routing = BuggyRouter::new(inner, NodeId(1));
    let front = corner_exchange(&mesh, 2);
    let pattern = Uniform::new();
    let mut sim = Sim::new(&mesh, &routing, &pattern, mc_config(1, 0));
    let ctx = EncodeCtx::identity(sim.num_slots(), 4, front.len());
    let outcome = explore(
        &mut sim,
        &front,
        &ctx,
        &ExploreParams {
            enumerate_injection: true,
            stop_at_first_deadlock: true,
            max_states: MAX_STATES,
        },
    );
    entry_from(
        "mesh2 planted-bug west-first (filter skipped at n1)".to_string(),
        "sim",
        true, // the lie the self-test must expose
        1,
        &outcome,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_passes() {
        let report = run(&McOptions {
            quick: true,
            inject_bad: false,
        });
        assert!(report.passed(), "{}", report.render());
        // The quick matrix still covers the full census (2×2
        // certifications, 3×3 refutations) plus the cross-topology and
        // fairness entries.
        assert_eq!(report.entries.len(), 12 + 4 + 5);
        assert!(report.counterexample_ttr.is_some());
        // 12 certifications, each exhaustive with zero deadlocks.
        let safe: Vec<_> = report
            .entries
            .iter()
            .filter(|e| e.name.starts_with("mesh2 prohibit"))
            .collect();
        assert_eq!(safe.len(), 12);
        for e in safe {
            assert!(e.expect_deadlock_free && e.complete && !e.deadlock);
            assert_eq!(e.max_misroutes, 0, "{}: minimal routing misrouted", e.name);
        }
        // 4 refutations, each with a refined, replayed counterexample.
        let unsafe_entries: Vec<_> = report
            .entries
            .iter()
            .filter(|e| e.name.starts_with("mesh3 prohibit"))
            .collect();
        assert_eq!(unsafe_entries.len(), 4);
        for e in unsafe_entries {
            assert!(!e.expect_deadlock_free && e.deadlock, "{}", e.name);
            assert_eq!(e.refinement_ok, Some(true), "{}", e.name);
            assert_eq!(e.witness_match, Some(true), "{}", e.name);
            assert_eq!(e.replay_stuck, Some(true), "{}", e.name);
        }
    }

    #[test]
    fn inject_bad_is_caught() {
        let report = run(&McOptions {
            quick: true,
            inject_bad: true,
        });
        assert!(
            !report.passed(),
            "planted arbitration bug escaped the checker"
        );
        assert_eq!(report.entries.len(), 1);
        assert!(report.entries[0].deadlock, "the wedge must be reachable");
    }

    #[test]
    fn json_artifact_is_well_formed() {
        let report = run(&McOptions {
            quick: true,
            inject_bad: true,
        });
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"tool\":\"turncheck\""));
        assert!(json.contains("\"passed\":false"));
    }
}
