//! Engine adapters: the seam between the explorer and the real routers.
//!
//! `turncheck`'s whole point is that it model-checks the *production
//! engines*, not a re-model of them: every transition the explorer takes
//! is one [`turnroute_sim::Sim::step_with_choices`] (or the
//! [`turnroute_vc::VcSim`] equivalent) of the same code CI benchmarks and
//! the experiments run. [`McEngine`] is the small trait that makes the
//! explorer generic over the two engines; it only re-exposes state views
//! and the snapshot/scripted-step seam both engines already provide — no
//! routing or arbitration logic lives here.
//!
//! [`BuggyRouter`] is the planted defect for the CI gate's self-test: a
//! wrapper that, at exactly one router, ignores the turn discipline and
//! offers every productive direction (and reports no turn set, so the
//! engine's own arbitration-side filter is skipped too). A checker that
//! cannot find the resulting reachable wedge is blind, and the gate
//! fails.

use turnroute_model::{RoutingFunction, TurnSet};
use turnroute_sim::{ChoiceScript, Sim, SimSnapshot};
use turnroute_topology::{DirSet, Direction, NodeId, Topology};
use turnroute_vc::{VcSim, VcSimSnapshot};

/// The engine surface the explorer needs: snapshot/restore, one scripted
/// step, packet injection, and the canonical state views. Implemented by
/// both production engines; see the [module docs](self).
pub(crate) trait McEngine {
    /// The engine's complete mutable state.
    type Snap: Clone;

    /// Capture the complete mutable state.
    fn snapshot(&self) -> Self::Snap;
    /// Restore a previously captured state.
    fn restore(&mut self, snap: &Self::Snap);
    /// Advance one cycle with arbitration resolved by `script`.
    fn step_with_choices(&mut self, script: &mut ChoiceScript);
    /// Queue one packet at its source.
    fn inject(&mut self, src: NodeId, dst: NodeId, len: u32);
    /// Whether no flit is anywhere in the network or its queues.
    fn is_idle(&self) -> bool;
    /// Total channel slots (network + injection + ejection).
    fn num_slots(&self) -> usize;
    /// Packet owning `slot`, if any.
    fn slot_owner(&self, slot: usize) -> Option<u32>;
    /// Output slot the worm crossing `slot` is bound to, if routed.
    fn slot_binding(&self, slot: usize) -> Option<usize>;
    /// Buffered flits at `slot`, front first, as `(packet, head, tail)`.
    fn slot_flits(&self, slot: usize) -> Vec<(u32, bool, bool)>;
    /// Packets queued at `node`'s source, front first.
    fn source_queue(&self, node: usize) -> Vec<u32>;
    /// Packet streaming into `node`'s injection channel and flits sent.
    fn source_emitting(&self, node: usize) -> Option<(u32, u32)>;
    /// Unproductive hops packet `id` has taken so far.
    fn packet_misroutes(&self, id: u32) -> u32;
    /// Whether packet `id` has been fully consumed at its destination.
    fn packet_delivered(&self, id: u32) -> bool;
    /// The circular wait of the current state, as an *ordered* slot
    /// cycle (each entry waits for the next, wrapping), or empty when no
    /// circular wait exists or the engine does not expose one.
    fn deadlock_cycle(&self) -> Vec<usize>;
}

impl McEngine for Sim<'_> {
    type Snap = SimSnapshot;

    fn snapshot(&self) -> SimSnapshot {
        Sim::snapshot(self)
    }

    fn restore(&mut self, snap: &SimSnapshot) {
        Sim::restore(self, snap);
    }

    fn step_with_choices(&mut self, script: &mut ChoiceScript) {
        Sim::step_with_choices(self, script);
    }

    fn inject(&mut self, src: NodeId, dst: NodeId, len: u32) {
        self.inject_packet(src, dst, len);
    }

    fn is_idle(&self) -> bool {
        Sim::is_idle(self)
    }

    fn num_slots(&self) -> usize {
        Sim::num_slots(self)
    }

    fn slot_owner(&self, slot: usize) -> Option<u32> {
        Sim::slot_owner(self, slot)
    }

    fn slot_binding(&self, slot: usize) -> Option<usize> {
        Sim::slot_binding(self, slot)
    }

    fn slot_flits(&self, slot: usize) -> Vec<(u32, bool, bool)> {
        Sim::slot_flits(self, slot).collect()
    }

    fn source_queue(&self, node: usize) -> Vec<u32> {
        Sim::source_queue(self, node).collect()
    }

    fn source_emitting(&self, node: usize) -> Option<(u32, u32)> {
        Sim::source_emitting(self, node)
    }

    fn packet_misroutes(&self, id: u32) -> u32 {
        self.packets()[id as usize].misroutes
    }

    fn packet_delivered(&self, id: u32) -> bool {
        self.packets()[id as usize].delivered.is_some()
    }

    fn deadlock_cycle(&self) -> Vec<usize> {
        let snap = self.deadlock_snapshot();
        let members = snap.cycle_channels();
        let Some(&start) = members.first() else {
            return Vec::new();
        };
        // cycle_channels reports membership sorted by slot index; recover
        // the wait order by chasing the (partial-function) waits-for
        // pointers around the cycle.
        let mut next = vec![usize::MAX; snap.layout.num_channels];
        for e in &snap.edges {
            if let Some(w) = e.waits_for {
                next[e.channel] = w;
            }
        }
        let mut cycle = vec![start];
        let mut c = next[start];
        while c != start && c != usize::MAX && cycle.len() <= members.len() {
            cycle.push(c);
            c = next[c];
        }
        if c == start {
            cycle
        } else {
            Vec::new()
        }
    }
}

impl McEngine for VcSim<'_> {
    type Snap = VcSimSnapshot;

    fn snapshot(&self) -> VcSimSnapshot {
        VcSim::snapshot(self)
    }

    fn restore(&mut self, snap: &VcSimSnapshot) {
        VcSim::restore(self, snap);
    }

    fn step_with_choices(&mut self, script: &mut ChoiceScript) {
        VcSim::step_with_choices(self, script);
    }

    fn inject(&mut self, src: NodeId, dst: NodeId, len: u32) {
        self.inject_packet(src, dst, len);
    }

    fn is_idle(&self) -> bool {
        VcSim::is_idle(self)
    }

    fn num_slots(&self) -> usize {
        VcSim::num_slots(self)
    }

    fn slot_owner(&self, slot: usize) -> Option<u32> {
        VcSim::slot_owner(self, slot)
    }

    fn slot_binding(&self, slot: usize) -> Option<usize> {
        VcSim::slot_binding(self, slot)
    }

    fn slot_flits(&self, slot: usize) -> Vec<(u32, bool, bool)> {
        VcSim::slot_flits(self, slot).collect()
    }

    fn source_queue(&self, node: usize) -> Vec<u32> {
        VcSim::source_queue(self, node).collect()
    }

    fn source_emitting(&self, node: usize) -> Option<(u32, u32)> {
        VcSim::source_emitting(self, node)
    }

    fn packet_misroutes(&self, id: u32) -> u32 {
        self.packets()[id as usize].misroutes
    }

    fn packet_delivered(&self, id: u32) -> bool {
        self.packets()[id as usize].delivered.is_some()
    }

    fn deadlock_cycle(&self) -> Vec<usize> {
        // The VC engine has no waits-for snapshot; VC configurations in
        // the matrix are all expected deadlock free, so no refinement
        // mapping is ever needed. A stuck VC state is still reported
        // through the scenario counterexample.
        Vec::new()
    }
}

/// The planted defect for the `--inject-bad` self-test: at router `at`,
/// the turn-set discipline is skipped and every productive direction is
/// offered; everywhere else the wrapped function is consulted verbatim.
/// [`RoutingFunction::turn_set`] reports `None`, so the engine's
/// arbitration-side turn filter — the second line of defense — is off as
/// well, exactly the failure mode of an arbiter wired past its filter.
pub struct BuggyRouter<R> {
    inner: R,
    at: NodeId,
    name: String,
}

impl<R: RoutingFunction> BuggyRouter<R> {
    /// Wrap `inner`, planting the filter skip at router `at`.
    pub fn new(inner: R, at: NodeId) -> BuggyRouter<R> {
        let name = format!("buggy({} at n{})", inner.name(), at.0);
        BuggyRouter { inner, at, name }
    }
}

impl<R: RoutingFunction> RoutingFunction for BuggyRouter<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        if current == self.at && current != dest {
            topo.productive_dirs(current, dest)
        } else {
            self.inner.route(topo, current, dest, arrived)
        }
    }

    fn is_minimal(&self) -> bool {
        self.inner.is_minimal()
    }

    fn turn_set(&self, _num_dims: usize) -> Option<TurnSet> {
        None
    }
}
