//! Canonical state encoding, symmetry canonicalization, and FNV hashing.
//!
//! A global state of a scripted exploration is determined by: which front
//! packets are still pending, every channel slot's owner/binding/buffered
//! flits, every source queue and emitter, and every packet's
//! delivered/misroute status. Everything else the engine snapshot carries
//! is deliberately *excluded* from the encoding:
//!
//! * `now` and `head_since` — with `routing_delay = 0` a settled head is
//!   always past its delay gate, so absolute time never changes which
//!   transitions are enabled;
//! * the RNG — scripted steps consult the oracle, never the RNG (the
//!   injection rate is zero and no policy is `Random`);
//! * statistics (latency sums, stall counters, measurement windows) —
//!   observational, not behavioral.
//!
//! Packet identity is the other canonicalization problem: the engines
//! assign dense packet ids in injection order, so the same physical
//! configuration reached through two injection schedules would encode
//! differently. The explorer therefore relabels every engine packet id to
//! its *front index* (stable across schedules) before encoding.
//!
//! On square meshes the encoder additionally canonicalizes under the
//! stabilizer of the configuration: the mesh symmetries that fix the turn
//! set *and* permute the injection front onto itself. Such a symmetry
//! commutes with every scripted transition (the explorer enumerates all
//! arbitration orders, so the successor *set* is equivariant), making
//! min-over-orbit a sound state-space reduction. The canonical form is
//! the lexicographically smallest encoding over the stabilizer.

use super::driver::McEngine;
use super::front::FrontPacket;
use std::hash::{BuildHasher, Hasher};
use turnroute_model::symmetry::mesh_symmetries;
use turnroute_model::TurnSet;
use turnroute_topology::{Direction, Mesh, NodeId, Topology};

/// 64-bit FNV-1a, the visited-set hasher. The set keys on the *full*
/// canonical encoding (a hash collision must never merge two distinct
/// states — that would certify an unexplored space), so the hasher only
/// has to be fast and well distributed, not cryptographic.
pub struct Fnv1a64(u64);

impl Hasher for Fnv1a64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// [`BuildHasher`] handing out [`Fnv1a64`] with the standard offset
/// basis.
#[derive(Debug, Clone, Default)]
pub struct FnvBuild;

impl BuildHasher for FnvBuild {
    type Hasher = Fnv1a64;

    fn build_hasher(&self) -> Fnv1a64 {
        Fnv1a64(0xcbf2_9ce4_8422_2325)
    }
}

/// One state-space symmetry, precomputed as index maps: `slot_to[s]` is
/// the image slot of `s`, `node_to[v]` the image node, `front_to[i]` the
/// image front index.
#[derive(Debug, Clone)]
pub(crate) struct StatePerm {
    slot_to: Vec<usize>,
    front_to: Vec<u32>,
    /// Inverses, so encoding can iterate output indices in order.
    slot_from: Vec<usize>,
    node_from: Vec<usize>,
    front_from: Vec<u32>,
}

impl StatePerm {
    fn identity(num_slots: usize, num_nodes: usize, front_len: usize) -> StatePerm {
        StatePerm {
            slot_to: (0..num_slots).collect(),
            front_to: (0..front_len as u32).collect(),
            slot_from: (0..num_slots).collect(),
            node_from: (0..num_nodes).collect(),
            front_from: (0..front_len as u32).collect(),
        }
    }

    fn from_maps(slot_to: Vec<usize>, node_to: &[usize], front_to: Vec<u32>) -> StatePerm {
        let mut slot_from = vec![0; slot_to.len()];
        for (old, &new) in slot_to.iter().enumerate() {
            slot_from[new] = old;
        }
        let mut node_from = vec![0; node_to.len()];
        for (old, &new) in node_to.iter().enumerate() {
            node_from[new] = old;
        }
        let mut front_from = vec![0; front_to.len()];
        for (old, &new) in front_to.iter().enumerate() {
            front_from[new as usize] = old as u32;
        }
        StatePerm {
            slot_to,
            front_to,
            slot_from,
            node_from,
            front_from,
        }
    }
}

/// The encoding context of one configuration: shape constants plus the
/// symmetry group to canonicalize under (always at least the identity).
pub(crate) struct EncodeCtx {
    pub num_slots: usize,
    pub num_nodes: usize,
    pub front_len: usize,
    perms: Vec<StatePerm>,
}

impl EncodeCtx {
    /// A context with no symmetry reduction.
    pub fn identity(num_slots: usize, num_nodes: usize, front_len: usize) -> EncodeCtx {
        EncodeCtx {
            num_slots,
            num_nodes,
            front_len,
            perms: vec![StatePerm::identity(num_slots, num_nodes, front_len)],
        }
    }

    /// A context canonicalizing under the stabilizer of `(set, front)`
    /// inside the hyperoctahedral group of `mesh`: the symmetries that
    /// preserve every side length, fix the turn set, and permute the
    /// front onto itself. Falls back to the identity alone when nothing
    /// else qualifies.
    pub fn mesh_stabilizer(mesh: &Mesh, set: &TurnSet, front: &[FrontPacket]) -> EncodeCtx {
        let n = mesh.num_dims();
        let radix: Vec<u16> = mesh.radices().to_vec();
        let num_nodes = mesh.num_nodes();
        let inj_base = num_nodes * 2 * n;
        let ej_base = inj_base + num_nodes;
        let num_slots = ej_base + num_nodes;
        let mut perms = Vec::new();
        // Only canonicalize on square meshes: there every signed axis
        // permutation is a graph automorphism. (On non-square meshes the
        // identity fallback below keeps the context valid.)
        let square = radix.windows(2).all(|w| w[0] == w[1]);
        if square {
            for g in mesh_symmetries(n) {
                if g.apply(set) != *set {
                    continue;
                }
                let node_to: Vec<usize> = (0..num_nodes)
                    .map(|v| {
                        let c = mesh.coord_of(NodeId(v as u32));
                        mesh.node_at_coords(&g.apply_coords(c.as_slice(), &radix))
                            .index()
                    })
                    .collect();
                let Some(front_to) = front_action(front, &node_to) else {
                    continue;
                };
                let mut slot_to = vec![0usize; num_slots];
                for (v, &img) in node_to.iter().enumerate() {
                    for d in Direction::all(n) {
                        let old = mesh.channel_slot(NodeId(v as u32), d);
                        let new = mesh.channel_slot(NodeId(img as u32), g.apply_dir(d));
                        slot_to[old] = new;
                    }
                    slot_to[inj_base + v] = inj_base + img;
                    slot_to[ej_base + v] = ej_base + img;
                }
                perms.push(StatePerm::from_maps(slot_to, &node_to, front_to));
            }
        }
        if perms.is_empty() {
            perms.push(StatePerm::identity(num_slots, num_nodes, front.len()));
        }
        EncodeCtx {
            num_slots,
            num_nodes,
            front_len: front.len(),
            perms,
        }
    }

    /// Group order (1 = no reduction).
    pub fn group_order(&self) -> usize {
        self.perms.len()
    }
}

/// The front permutation induced by a node map, or `None` when the front
/// is not invariant under it (duplicates pair up greedily, which is sound
/// — identical packets are interchangeable in every view).
fn front_action(front: &[FrontPacket], node_to: &[usize]) -> Option<Vec<u32>> {
    let mut front_to = vec![u32::MAX; front.len()];
    let mut taken = vec![false; front.len()];
    for (i, p) in front.iter().enumerate() {
        let img = (
            node_to[p.src.index()] as u32,
            node_to[p.dst.index()] as u32,
            p.len,
        );
        let j = front
            .iter()
            .enumerate()
            .position(|(j, q)| !taken[j] && (q.src.0, q.dst.0, q.len) == img)?;
        taken[j] = true;
        front_to[i] = j as u32;
    }
    Some(front_to)
}

/// One channel slot's contents: `(owner_front, binding_slot, flits)`,
/// each flit `(front, head, tail)`; `u32::MAX` / `usize::MAX` mean none.
type SlotView = (u32, usize, Vec<(u32, bool, bool)>);

/// The symmetry-free view of one engine state, with packets already
/// relabeled to front indices.
#[derive(Debug, Clone, Default)]
pub(crate) struct RawView {
    /// Per slot: owner, binding, and buffered flits.
    slots: Vec<SlotView>,
    /// Per node: queued front indices, front first.
    queues: Vec<Vec<u32>>,
    /// Per node: `(front, flits_sent)` of the packet streaming in.
    emitting: Vec<Option<(u32, u32)>>,
    /// Per front index: `(delivered, misroutes)`; pending packets read
    /// `(false, 0)`.
    packets: Vec<(bool, u32)>,
    /// Front indices not yet injected, as a bitmask.
    pending: u32,
}

/// Extract the relabeled view of `engine`'s current state. `order[p]` is
/// the front index of engine packet id `p`.
pub(crate) fn extract_view<E: McEngine>(
    engine: &E,
    order: &[u32],
    pending: u32,
    ctx: &EncodeCtx,
) -> RawView {
    let relabel = |p: u32| order[p as usize];
    let mut view = RawView {
        pending,
        ..RawView::default()
    };
    for s in 0..ctx.num_slots {
        let owner = engine.slot_owner(s).map_or(u32::MAX, relabel);
        let binding = engine.slot_binding(s).unwrap_or(usize::MAX);
        let flits = engine
            .slot_flits(s)
            .into_iter()
            .map(|(p, h, t)| (relabel(p), h, t))
            .collect();
        view.slots.push((owner, binding, flits));
    }
    for v in 0..ctx.num_nodes {
        view.queues
            .push(engine.source_queue(v).into_iter().map(relabel).collect());
        view.emitting.push(
            engine
                .source_emitting(v)
                .map(|(p, sent)| (relabel(p), sent)),
        );
    }
    view.packets = vec![(false, 0); ctx.front_len];
    for (p, &front) in order.iter().enumerate() {
        let p = p as u32;
        view.packets[front as usize] = (engine.packet_delivered(p), engine.packet_misroutes(p));
    }
    view
}

/// The canonical encoding of `view`: the lexicographically smallest byte
/// string over the context's symmetry group.
pub(crate) fn canonical(view: &RawView, ctx: &EncodeCtx) -> Vec<u8> {
    ctx.perms
        .iter()
        .map(|perm| encode_under(view, perm))
        .min()
        .expect("at least the identity")
}

fn encode_under(view: &RawView, perm: &StatePerm) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * view.slots.len());
    let mut pending = 0u32;
    for i in 0..perm.front_to.len() {
        if view.pending & (1 << i) != 0 {
            pending |= 1 << perm.front_to[i];
        }
    }
    out.extend_from_slice(&pending.to_le_bytes());
    for new_s in 0..view.slots.len() {
        let (owner, binding, ref flits) = view.slots[perm.slot_from[new_s]];
        push_front(&mut out, owner, perm);
        if binding == usize::MAX {
            out.extend_from_slice(&u16::MAX.to_le_bytes());
        } else {
            out.extend_from_slice(&(perm.slot_to[binding] as u16).to_le_bytes());
        }
        out.push(flits.len() as u8);
        for &(p, head, tail) in flits {
            push_front(&mut out, p, perm);
            out.push(u8::from(head) << 1 | u8::from(tail));
        }
    }
    for new_v in 0..view.queues.len() {
        let old_v = perm.node_from[new_v];
        let q = &view.queues[old_v];
        out.push(q.len() as u8);
        for &p in q {
            push_front(&mut out, p, perm);
        }
        match view.emitting[old_v] {
            Some((p, sent)) => {
                out.push(1);
                push_front(&mut out, p, perm);
                out.push(sent as u8);
            }
            None => out.push(0),
        }
    }
    for new_f in 0..perm.front_from.len() {
        let (delivered, misroutes) = view.packets[perm.front_from[new_f] as usize];
        out.push(u8::from(delivered));
        out.push(misroutes as u8);
    }
    out
}

fn push_front(out: &mut Vec<u8>, front: u32, perm: &StatePerm) {
    if front == u32::MAX {
        out.push(u8::MAX);
    } else {
        out.push(perm.front_to[front as usize] as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_model::presets;

    fn front_2x2() -> Vec<FrontPacket> {
        // Corner exchange on the 2x2 mesh: invariant under the whole
        // square group.
        [(0u32, 3u32), (3, 0), (1, 2), (2, 1)]
            .iter()
            .map(|&(s, d)| FrontPacket {
                src: NodeId(s),
                dst: NodeId(d),
                len: 2,
            })
            .collect()
    }

    /// A hand-built non-symmetric view on the 2x2 mesh: packet 0's head
    /// sits in the east channel out of node 0.
    fn sample_view(mesh: &Mesh, ctx: &EncodeCtx, slot: usize, front: u32) -> RawView {
        let _ = mesh;
        let mut view = RawView {
            pending: 0b1100,
            ..RawView::default()
        };
        view.slots = vec![(u32::MAX, usize::MAX, Vec::new()); ctx.num_slots];
        view.slots[slot] = (front, usize::MAX, vec![(front, true, false)]);
        view.queues = vec![Vec::new(); ctx.num_nodes];
        view.emitting = vec![None; ctx.num_nodes];
        view.packets = vec![(false, 0); ctx.front_len];
        view
    }

    #[test]
    fn isomorphic_states_encode_identically() {
        // On the 2x2 mesh the x-flip swaps n0<->n1 and n2<->n3, so it
        // maps "front packet 0 (n0->n3) heading east out of n0" onto
        // "front packet 2 (n1->n2) heading west out of n1", and the
        // pending set {2, 3} onto {0, 1}. The two states are isomorphic,
        // so their canonical encodings — and hence their FNV hashes —
        // must be equal.
        let mesh = Mesh::new_2d(2, 2);
        let wf = TurnSet::all_ninety(2); // fixed by the full square group
        let ctx = EncodeCtx::mesh_stabilizer(&mesh, &wf, &front_2x2());
        assert_eq!(ctx.group_order(), 8, "corner front keeps the full group");
        let east_out_of_0 = mesh.channel_slot(NodeId(0), Direction::EAST);
        let west_out_of_1 = mesh.channel_slot(NodeId(1), Direction::WEST);
        let a = sample_view(&mesh, &ctx, east_out_of_0, 0);
        let mut b = sample_view(&mesh, &ctx, west_out_of_1, 2);
        b.pending = 0b0011;
        let ca = canonical(&a, &ctx);
        let cb = canonical(&b, &ctx);
        assert_eq!(ca, cb, "isomorphic states must share a canonical form");
        let h = FnvBuild;
        assert_eq!(h.hash_one(&ca), h.hash_one(&cb));
        // Sanity: a turn set with a smaller stabilizer really shrinks the
        // group (negative-first is only fixed by symmetries that preserve
        // signs), and shrinking the group never invalidates the context.
        let nf = presets::negative_first_turns(2);
        let ctx_nf = EncodeCtx::mesh_stabilizer(&mesh, &nf, &front_2x2());
        assert!(ctx_nf.group_order() < 8);
        assert!(ctx_nf.group_order() >= 1);
    }

    #[test]
    fn mutated_states_encode_differently() {
        // Flipping any observable bit — owner, flit flags, pending mask,
        // misroute counters — must change the canonical form: the visited
        // set keys on these bytes, so two genuinely different states must
        // never merge.
        let mesh = Mesh::new_2d(2, 2);
        let wf = TurnSet::all_ninety(2);
        let ctx = EncodeCtx::mesh_stabilizer(&mesh, &wf, &front_2x2());
        let slot = mesh.channel_slot(NodeId(0), Direction::EAST);
        let base = sample_view(&mesh, &ctx, slot, 0);
        let c0 = canonical(&base, &ctx);

        let mut m1 = base.clone();
        m1.slots[slot].2[0].1 = false; // head flag off
        assert_ne!(canonical(&m1, &ctx), c0);

        let mut m2 = base.clone();
        m2.pending = 0b1000;
        assert_ne!(canonical(&m2, &ctx), c0);

        let mut m3 = base.clone();
        m3.packets[2] = (false, 1); // a misroute appears
        assert_ne!(canonical(&m3, &ctx), c0);

        let mut m4 = base.clone();
        m4.queues[2].push(3);
        assert_ne!(canonical(&m4, &ctx), c0);
    }

    #[test]
    fn identity_context_is_order_sensitive_but_stable() {
        let mesh = Mesh::new_2d(2, 2);
        let ctx = EncodeCtx::identity(16 + 4 + 4, 4, 4);
        let slot = mesh.channel_slot(NodeId(0), Direction::EAST);
        let v = sample_view(&mesh, &ctx, slot, 0);
        assert_eq!(canonical(&v, &ctx), canonical(&v.clone(), &ctx));
        assert_eq!(ctx.group_order(), 1);
    }
}
