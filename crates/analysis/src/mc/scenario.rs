//! Replayable counterexamples.
//!
//! A model-checking counterexample is useless if only the checker can
//! interpret it, so turncheck emits every deadlock it finds as a
//! *scenario*: the literal injection schedule and arbitration digits of
//! the trace, which a fresh production engine re-executes step for step.
//! The replay runs under a small deadlock threshold so the engine's *own*
//! detector — not the checker — declares the stuck state, and it records
//! a TTRL log along the way, so `turnstat replay` (and every other
//! turntrace consumer) can inspect the deadlock with the tools that
//! already exist.

use super::explore::Deadlock;
use super::front::FrontPacket;
use turnroute_model::RoutingFunction;
use turnroute_obslog::LogObserver;
use turnroute_sim::{ChoiceScript, Sim, SimConfig};
use turnroute_topology::Topology;
use turnroute_traffic::Uniform;

/// One scheduled cycle of a counterexample: which front packets enter
/// and which digits resolve the step's arbitration.
#[derive(Debug, Clone)]
pub struct ScenarioStep {
    /// Front indices injected at the start of this cycle.
    pub inject: Vec<u32>,
    /// Choice digits resolving this cycle's arbitration.
    pub digits: Vec<u32>,
}

/// A complete seeded injection schedule reaching a stuck state.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The steps, in execution order.
    pub steps: Vec<ScenarioStep>,
}

impl Scenario {
    /// Package an explorer counterexample trace.
    pub(crate) fn from_deadlock(dl: &Deadlock) -> Scenario {
        Scenario {
            steps: dl
                .trace
                .iter()
                .map(|a| ScenarioStep {
                    inject: a.inject.clone(),
                    digits: a.digits.clone(),
                })
                .collect(),
        }
    }

    /// Render as a JSON fragment for the report artifact.
    pub fn to_json(&self) -> String {
        let steps: Vec<String> = self
            .steps
            .iter()
            .map(|s| {
                format!(
                    "{{\"inject\":[{}],\"digits\":[{}]}}",
                    join(&s.inject),
                    join(&s.digits)
                )
            })
            .collect();
        format!("[{}]", steps.join(","))
    }
}

fn join(xs: &[u32]) -> String {
    xs.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
}

/// What replaying a scenario on a fresh engine produced.
pub struct ReplayOutcome {
    /// Whether the engine's own deadlock detector declared the state
    /// stuck after the scripted steps ran out.
    pub stuck: bool,
    /// Packets delivered during the replay (a stuck replay delivers
    /// strictly fewer than the front size).
    pub delivered: u64,
    /// The sealed TTRL log of the replay.
    pub ttr: Vec<u8>,
}

/// Re-execute `scenario` on a fresh wormhole engine and let the engine's
/// own detector judge the final state. `cfg` should be the exploration
/// configuration; the replay clamps its deadlock threshold down so the
/// detector actually fires within `threshold` idle cycles.
pub fn replay_wormhole(
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    front: &[FrontPacket],
    cfg: &SimConfig,
    scenario: &Scenario,
    threshold: u64,
) -> ReplayOutcome {
    let mut cfg = cfg.clone();
    cfg.deadlock_threshold = threshold;
    let pattern = Uniform::new();
    let log = LogObserver::start(topo, routing, &pattern, &cfg, "sim");
    let mut sim = Sim::with_observer(topo, routing, &pattern, cfg, log);
    for step in &scenario.steps {
        for &i in &step.inject {
            let p = &front[i as usize];
            sim.inject_packet(p.src, p.dst, p.len);
        }
        let mut script = ChoiceScript::new(step.digits.clone());
        sim.step_with_choices(&mut script);
    }
    // The trace ends in the stuck state; idle from here on, so the
    // engine's detector trips after `threshold` quiet cycles.
    let mut guard = 4 * threshold + 16;
    while !sim.deadlocked() && !sim.is_idle() && guard > 0 {
        sim.step();
        guard -= 1;
    }
    let stuck = sim.deadlocked();
    let delivered = (0..front.len())
        .filter(|&p| {
            sim.packets()
                .get(p)
                .is_some_and(|pkt| pkt.delivered.is_some())
        })
        .count() as u64;
    ReplayOutcome {
        stuck,
        delivered,
        ttr: sim.into_observer().finish(),
    }
}
