//! Mechanical extraction of explicit channel graphs.
//!
//! Everything `turnprove` verifies is first lowered to a
//! [`GraphSpec`] by one of the functions here — from a bare [`TurnSet`]
//! (potential dependencies), a concrete [`RoutingFunction`] (induced
//! dependencies, optionally masked by a [`FaultSet`] through the
//! verifier's own [`FaultMasked`] view), or a [`VcRoutingFunction`] over
//! the virtual channels of the double-y mesh. The extraction reuses the
//! workspace's existing graph builders ([`Cdg`], [`VcCdg`]) for the
//! dependency edges, so the prover and the simulator argue about the
//! *same* relation rather than two hand-derived copies.
//!
//! Extraction is the trusted computing base of the prover/checker split:
//! the checker validates certificates against these specs, so a bug here
//! is a bug in the *question*, not in the *proof* (see `DESIGN.md` §9).

use crate::certificate::{ChannelVertex, GraphSpec};
use crate::routing::TurnSetRouting;
use turnroute_model::{Cdg, FaultMasked, RoutingFunction, TurnSet};
use turnroute_topology::{FaultSet, Mesh, NodeId, Topology};
use turnroute_vc::{VcCdg, VcClass, VcRoutingFunction, VirtualDirection};

/// Lower a bare turn set: dependency edges are the *potential* CDG (any
/// allowed turn, regardless of destination — the strongest claim), and the
/// routing relation is the maximal coherent minimal function the set
/// permits ([`TurnSetRouting`]).
pub fn from_turn_set(name: impl Into<String>, topo: &dyn Topology, set: &TurnSet) -> GraphSpec {
    let name = name.into();
    let cdg = Cdg::from_turn_set(topo, set);
    let routing = TurnSetRouting::new(name.clone(), set.clone(), topo);
    physical_spec(name, topo, &cdg, &routing)
}

/// Lower a concrete routing function: dependency edges are the induced
/// CDG (only moves some destination actually provokes), and the routing
/// relation is the function itself.
pub fn from_routing(
    name: impl Into<String>,
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
) -> GraphSpec {
    let cdg = Cdg::from_routing(topo, routing);
    physical_spec(name.into(), topo, &cdg, routing)
}

/// Lower a routing function under a fault pattern, through the *same*
/// [`FaultMasked`] view `verify_under_faults` checks: primary routes and
/// turn-legal misroute fallbacks filtered by the fault set, failed-input
/// arrival states excluded as vacuous.
pub fn from_faulted_routing(
    name: impl Into<String>,
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    faults: &FaultSet,
) -> GraphSpec {
    let masked = FaultMasked::new(topo, routing, faults);
    from_routing(name, topo, &masked)
}

/// Shared physical-channel lowering: vertices and state indexing from
/// `topo`, dependency edges from `cdg`, routes from `routing` (with the
/// same reachable-state pruning the CDG builder applies to minimal
/// functions, so the route relation never exceeds the proven edges).
fn physical_spec(
    name: String,
    topo: &dyn Topology,
    cdg: &Cdg,
    routing: &dyn RoutingFunction,
) -> GraphSpec {
    let channels = topo.channels();
    let num_nodes = topo.num_nodes();
    let mut slot_to_channel = vec![u32::MAX; topo.channel_slot_count()];
    for ch in &channels {
        slot_to_channel[topo.channel_slot(ch.src(), ch.dir())] = ch.id().0;
    }
    let verts: Vec<ChannelVertex> = channels
        .iter()
        .map(|ch| ChannelVertex {
            src: ch.src().0,
            dst: ch.dst().0,
            label: ch.to_string(),
        })
        .collect();
    let mut deps = Vec::with_capacity(cdg.num_edges());
    for ch in cdg.channels() {
        for &succ in cdg.successors(ch.id()) {
            deps.push((ch.id().0, succ));
        }
    }

    let minimal = routing.is_minimal();
    let num_states = num_nodes + channels.len();
    let mut routes = Vec::with_capacity(num_nodes);
    for dest in 0..num_nodes {
        let dest = NodeId(dest as u32);
        let mut table = vec![Vec::new(); num_states];
        for node in 0..num_nodes {
            let node = NodeId(node as u32);
            if node == dest {
                continue;
            }
            table[node.index()] = resolve(topo, &slot_to_channel, node, {
                routing.route(topo, node, dest, None)
            });
        }
        for ch in &channels {
            let mid = ch.dst();
            if mid == dest {
                continue;
            }
            if minimal && topo.min_hops(mid, dest) >= topo.min_hops(ch.src(), dest) {
                continue; // unreachable state for a minimal function
            }
            table[num_nodes + ch.id().index()] = resolve(topo, &slot_to_channel, mid, {
                routing.route(topo, mid, dest, Some(ch.dir()))
            });
        }
        routes.push(table);
    }
    GraphSpec {
        name,
        num_nodes: num_nodes as u32,
        channels: verts,
        deps,
        routes,
    }
}

/// Map offered directions at `node` to channel ids, dropping directions
/// with no channel (mesh boundaries), exactly as the CDG builder does.
fn resolve(
    topo: &dyn Topology,
    slot_to_channel: &[u32],
    node: NodeId,
    dirs: turnroute_topology::DirSet,
) -> Vec<u32> {
    dirs.iter()
        .filter(|&d| topo.neighbor(node, d).is_some())
        .map(|d| {
            let id = slot_to_channel[topo.channel_slot(node, d)];
            debug_assert_ne!(id, u32::MAX);
            id
        })
        .collect()
}

/// Lower a virtual-channel routing function over the double-y channel set
/// of `mesh`: vertices are *virtual* channels, dependency edges come from
/// [`VcCdg`], and the route relation is extracted with the same
/// reachable-state pruning.
pub fn from_vc_routing(
    name: impl Into<String>,
    mesh: &Mesh,
    routing: &dyn VcRoutingFunction,
) -> GraphSpec {
    let cdg = VcCdg::from_routing(mesh, routing);
    let chans = cdg.channels();
    let slots_per_node = 2 * 2 * mesh.num_dims();
    let mut slot_to_id = vec![u32::MAX; mesh.num_nodes() * slots_per_node];
    for ch in chans {
        slot_to_id[ch.src.index() * slots_per_node + ch.vdir.index()] = ch.id;
    }
    let verts: Vec<ChannelVertex> = chans
        .iter()
        .map(|ch| ChannelVertex {
            src: ch.src.0,
            dst: ch.dst.0,
            label: format!("c{} {} -> {} ({})", ch.id, ch.src, ch.dst, ch.vdir),
        })
        .collect();
    let mut deps = Vec::with_capacity(cdg.num_edges());
    for ch in chans {
        for &succ in cdg.successors(ch.id) {
            deps.push((ch.id, succ));
        }
    }

    let num_nodes = mesh.num_nodes();
    let minimal = routing.is_minimal();
    let num_states = num_nodes + chans.len();
    let resolve_vc = |node: NodeId, vdirs: Vec<VirtualDirection>| -> Vec<u32> {
        vdirs
            .into_iter()
            .filter_map(|vd| {
                let id = slot_to_id[node.index() * slots_per_node + vd.index()];
                (id != u32::MAX).then_some(id)
            })
            .collect()
    };
    let mut routes = Vec::with_capacity(num_nodes);
    for dest in 0..num_nodes {
        let dest = NodeId(dest as u32);
        let mut table = vec![Vec::new(); num_states];
        for node in 0..num_nodes {
            let node = NodeId(node as u32);
            if node == dest {
                continue;
            }
            table[node.index()] = resolve_vc(node, routing.route(mesh, node, dest, None));
        }
        for ch in chans {
            let mid = ch.dst;
            if mid == dest {
                continue;
            }
            if minimal && mesh.min_hops(mid, dest) >= mesh.min_hops(ch.src, dest) {
                continue; // unreachable state for a minimal function
            }
            table[num_nodes + ch.id as usize] =
                resolve_vc(mid, routing.route(mesh, mid, dest, Some(ch.vdir)));
        }
        routes.push(table);
    }
    GraphSpec {
        name: name.into(),
        num_nodes: num_nodes as u32,
        channels: verts,
        deps,
        routes,
    }
}

/// A deliberately broken virtual-channel assignment: fully adaptive on
/// *both* y classes with no side discipline, which reintroduces the
/// dependency cycles the double-y rules exist to break. This is the
/// planted defect behind `turnprove --inject-bad` and the standing
/// negative control — the prover must emit a witness cycle for it, and
/// the checker must accept that witness.
pub struct PlantedCyclicVc;

impl VcRoutingFunction for PlantedCyclicVc {
    fn name(&self) -> &str {
        "planted-cyclic-vc"
    }

    fn route(
        &self,
        mesh: &Mesh,
        current: NodeId,
        dest: NodeId,
        _arrived: Option<VirtualDirection>,
    ) -> Vec<VirtualDirection> {
        use turnroute_topology::{Direction, Sign};
        let (c, d) = (mesh.coord_of(current), mesh.coord_of(dest));
        let mut out = Vec::new();
        if d.get(0) != c.get(0) {
            let sign = if d.get(0) > c.get(0) {
                Sign::Plus
            } else {
                Sign::Minus
            };
            out.push(VirtualDirection::new(Direction::new(0, sign), VcClass::One));
        }
        if d.get(1) != c.get(1) {
            let sign = if d.get(1) > c.get(1) {
                Sign::Plus
            } else {
                Sign::Minus
            };
            out.push(VirtualDirection::new(Direction::new(1, sign), VcClass::One));
            out.push(VirtualDirection::new(Direction::new(1, sign), VcClass::Two));
        }
        out
    }

    fn is_minimal(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_model::presets;
    use turnroute_vc::DoubleYAdaptive;

    #[test]
    fn turn_set_spec_is_well_formed_and_checkable() {
        let mesh = Mesh::new_2d(4, 4);
        let spec = from_turn_set("wf", &mesh, &presets::west_first_turns());
        assert_eq!(spec.num_nodes, 16);
        assert_eq!(spec.channels.len(), 48);
        let cert = crate::prove::prove(&spec);
        crate::check::check(&spec, &cert).expect("west-first certificate");
        assert!(cert.verdict.is_acyclic());
    }

    #[test]
    fn faulted_spec_excludes_dead_routes() {
        use turnroute_topology::Direction;
        let mesh = Mesh::new_2d(4, 4);
        let routing = TurnSetRouting::new("wf", presets::west_first_turns(), &mesh);
        let mut faults = FaultSet::new(&mesh);
        let victim = mesh.node_at_coords(&[1, 1]);
        faults.fail_link(&mesh, victim, Direction::EAST);
        let spec = from_faulted_routing("wf+f", &mesh, &routing, &faults);
        // The failed channel must never appear as a route target.
        let dead = mesh
            .channels()
            .iter()
            .find(|ch| ch.src() == victim && ch.dir() == Direction::EAST)
            .map(|ch| ch.id().0)
            .expect("channel exists");
        for table in &spec.routes {
            for outs in table {
                assert!(!outs.contains(&dead), "failed channel offered");
            }
        }
    }

    #[test]
    fn double_y_spec_has_virtual_vertices() {
        let mesh = Mesh::new_2d(4, 4);
        let spec = from_vc_routing("dy", &mesh, &DoubleYAdaptive::new());
        // 24 x channels + 48 doubled y channels.
        assert_eq!(spec.channels.len(), 72);
        assert!(spec.channels.iter().any(|v| v.label.contains("north2")));
    }

    #[test]
    fn planted_cyclic_vc_is_cyclic() {
        let mesh = Mesh::new_2d(4, 4);
        assert!(VcCdg::from_routing(&mesh, &PlantedCyclicVc)
            .find_cycle()
            .is_some());
    }
}
