//! Mechanical extraction of explicit channel graphs.
//!
//! Everything `turnprove` verifies is first lowered to a
//! [`GraphSpec`] by one of the functions here — from a bare [`TurnSet`]
//! (potential dependencies), a concrete [`RoutingFunction`] (induced
//! dependencies, optionally masked by a [`FaultSet`] through the
//! verifier's own [`FaultMasked`] view), or a [`VcRoutingFunction`] over
//! the virtual channels of the double-y mesh. The extraction reuses the
//! workspace's existing graph builders ([`Cdg`], [`VcCdg`]) for the
//! dependency edges, so the prover and the simulator argue about the
//! *same* relation rather than two hand-derived copies.
//!
//! Extraction is the trusted computing base of the prover/checker split:
//! the checker validates certificates against these specs, so a bug here
//! is a bug in the *question*, not in the *proof* (see `DESIGN.md` §9).

use crate::certificate::{ChannelVertex, GraphSpec};
use crate::routing::TurnSetRouting;
use turnroute_model::{Cdg, FaultMasked, RoutingFunction, TurnSet};
use turnroute_topology::{FaultSet, Mesh, NodeId, Topology};
use turnroute_vc::{VcCdg, VcClass, VcRoutingFunction, VirtualDirection};

/// Lower a bare turn set: dependency edges are the *potential* CDG (any
/// allowed turn, regardless of destination — the strongest claim), and the
/// routing relation is the maximal coherent minimal function the set
/// permits ([`TurnSetRouting`]).
pub fn from_turn_set(name: impl Into<String>, topo: &dyn Topology, set: &TurnSet) -> GraphSpec {
    let name = name.into();
    let cdg = Cdg::from_turn_set(topo, set);
    let routing = TurnSetRouting::new(name.clone(), set.clone(), topo);
    physical_spec(name, topo, &cdg, &routing)
}

/// Lower a concrete routing function: dependency edges are the induced
/// CDG (only moves some destination actually provokes), and the routing
/// relation is the function itself.
pub fn from_routing(
    name: impl Into<String>,
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
) -> GraphSpec {
    let cdg = Cdg::from_routing(topo, routing);
    physical_spec(name.into(), topo, &cdg, routing)
}

/// Lower a routing function under a fault pattern, through the *same*
/// [`FaultMasked`] view `verify_under_faults` checks: primary routes and
/// turn-legal misroute fallbacks filtered by the fault set, failed-input
/// arrival states excluded as vacuous.
pub fn from_faulted_routing(
    name: impl Into<String>,
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    faults: &FaultSet,
) -> GraphSpec {
    let masked = FaultMasked::new(topo, routing, faults);
    from_routing(name, topo, &masked)
}

/// Shared physical-channel lowering: vertices and state indexing from
/// `topo`, dependency edges from `cdg`, routes from `routing` (with the
/// same reachable-state pruning the CDG builder applies to minimal
/// functions, so the route relation never exceeds the proven edges).
fn physical_spec(
    name: String,
    topo: &dyn Topology,
    cdg: &Cdg,
    routing: &dyn RoutingFunction,
) -> GraphSpec {
    let channels = topo.channels();
    let num_nodes = topo.num_nodes();
    let mut slot_to_channel = vec![u32::MAX; topo.channel_slot_count()];
    for ch in &channels {
        slot_to_channel[topo.channel_slot(ch.src(), ch.dir())] = ch.id().0;
    }
    let verts: Vec<ChannelVertex> = channels
        .iter()
        .map(|ch| ChannelVertex {
            src: ch.src().0,
            dst: ch.dst().0,
            label: ch.to_string(),
        })
        .collect();
    let mut deps = Vec::with_capacity(cdg.num_edges());
    for ch in cdg.channels() {
        for &succ in cdg.successors(ch.id()) {
            deps.push((ch.id().0, succ));
        }
    }

    let minimal = routing.is_minimal();
    let num_states = num_nodes + channels.len();
    let mut routes = Vec::with_capacity(num_nodes);
    for dest in 0..num_nodes {
        let dest = NodeId(dest as u32);
        let mut table = vec![Vec::new(); num_states];
        for node in 0..num_nodes {
            let node = NodeId(node as u32);
            if node == dest {
                continue;
            }
            table[node.index()] = resolve(topo, &slot_to_channel, node, {
                routing.route(topo, node, dest, None)
            });
        }
        for ch in &channels {
            let mid = ch.dst();
            if mid == dest {
                continue;
            }
            if minimal && topo.min_hops(mid, dest) >= topo.min_hops(ch.src(), dest) {
                continue; // unreachable state for a minimal function
            }
            table[num_nodes + ch.id().index()] = resolve(topo, &slot_to_channel, mid, {
                routing.route(topo, mid, dest, Some(ch.dir()))
            });
        }
        routes.push(table);
    }
    GraphSpec {
        name,
        num_nodes: num_nodes as u32,
        channels: verts,
        deps,
        routes,
    }
}

/// Map offered directions at `node` to channel ids, dropping directions
/// with no channel (mesh boundaries), exactly as the CDG builder does.
fn resolve(
    topo: &dyn Topology,
    slot_to_channel: &[u32],
    node: NodeId,
    dirs: turnroute_topology::DirSet,
) -> Vec<u32> {
    dirs.iter()
        .filter(|&d| topo.neighbor(node, d).is_some())
        .map(|d| {
            let id = slot_to_channel[topo.channel_slot(node, d)];
            debug_assert_ne!(id, u32::MAX);
            id
        })
        .collect()
}

/// Lower a virtual-channel routing function over the double-y channel set
/// of `mesh`: vertices are *virtual* channels, dependency edges come from
/// [`VcCdg`], and the route relation is extracted with the same
/// reachable-state pruning.
pub fn from_vc_routing(
    name: impl Into<String>,
    mesh: &Mesh,
    routing: &dyn VcRoutingFunction,
) -> GraphSpec {
    let cdg = VcCdg::from_routing(mesh, routing);
    let chans = cdg.channels();
    let verts: Vec<ChannelVertex> = chans
        .iter()
        .map(|ch| ChannelVertex {
            src: ch.src.0,
            dst: ch.dst.0,
            label: format!("c{} {} -> {} ({})", ch.id, ch.src, ch.dst, ch.vdir),
        })
        .collect();
    let mut deps = Vec::with_capacity(cdg.num_edges());
    for ch in chans {
        for &succ in cdg.successors(ch.id) {
            deps.push((ch.id, succ));
        }
    }

    let num_nodes = mesh.num_nodes();
    let minimal = routing.is_minimal();
    let num_states = num_nodes + chans.len();
    let resolve_vc = |node: NodeId, vdirs: Vec<VirtualDirection>| -> Vec<u32> {
        vdirs
            .into_iter()
            .filter_map(|vd| cdg.channel_at(node, vd))
            .collect()
    };
    let mut routes = Vec::with_capacity(num_nodes);
    for dest in 0..num_nodes {
        let dest = NodeId(dest as u32);
        let mut table = vec![Vec::new(); num_states];
        for node in 0..num_nodes {
            let node = NodeId(node as u32);
            if node == dest {
                continue;
            }
            table[node.index()] = resolve_vc(node, routing.route(mesh, node, dest, None));
        }
        for ch in chans {
            let mid = ch.dst;
            if mid == dest {
                continue;
            }
            if minimal && mesh.min_hops(mid, dest) >= mesh.min_hops(ch.src, dest) {
                continue; // unreachable state for a minimal function
            }
            table[num_nodes + ch.id as usize] =
                resolve_vc(mid, routing.route(mesh, mid, dest, Some(ch.vdir)));
        }
        routes.push(table);
    }
    GraphSpec {
        name: name.into(),
        num_nodes: num_nodes as u32,
        channels: verts,
        deps,
        routes,
    }
}

/// Lower an arbitrary connected netlist under up*/down* routing. No
/// topology object exists for an irregular graph, so this extraction is
/// self-contained: a breadth-first spanning tree from node 0 assigns
/// every node a level, the channel `a -> b` is *up* iff
/// `(level[b], b) < (level[a], a)` (id breaks level ties, so "up" is a
/// total order toward the root), dependency edges admit every
/// non-reversing transition except the prohibited down -> up, and the
/// route relation offers, per destination, exactly the channels from
/// which the destination stays reachable through legal transitions.
/// Every up-only prefix has strictly decreasing `(level, id)` and every
/// down-only suffix strictly increasing, so the dependency graph is
/// acyclic and the prover's numbering exists.
///
/// # Panics
///
/// Panics when a link endpoint is out of range, a link is a self-loop,
/// or the netlist is not connected.
pub fn from_netlist(name: impl Into<String>, num_nodes: u32, links: &[(u32, u32)]) -> GraphSpec {
    let n = num_nodes as usize;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in links {
        assert!(
            a < num_nodes && b < num_nodes && a != b,
            "bad link ({a}, {b})"
        );
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    let mut level = vec![u32::MAX; n];
    level[0] = 0;
    let mut queue = std::collections::VecDeque::from([0u32]);
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v as usize] {
            if level[w as usize] == u32::MAX {
                level[w as usize] = level[v as usize] + 1;
                queue.push_back(w);
            }
        }
    }
    assert!(
        level.iter().all(|&l| l != u32::MAX),
        "netlist is not connected"
    );

    // One channel per direction per link, in link order.
    let chans: Vec<(u32, u32)> = links.iter().flat_map(|&(a, b)| [(a, b), (b, a)]).collect();
    let up = |c: (u32, u32)| (level[c.1 as usize], c.1) < (level[c.0 as usize], c.0);
    let verts: Vec<ChannelVertex> = chans
        .iter()
        .map(|&(a, b)| ChannelVertex {
            src: a,
            dst: b,
            label: format!("{a} -> {b} ({})", if up((a, b)) { "up" } else { "down" }),
        })
        .collect();

    let mut deps = Vec::new();
    for (i, &c1) in chans.iter().enumerate() {
        for (j, &c2) in chans.iter().enumerate() {
            let continues = c2.0 == c1.1 && c2.1 != c1.0; // no reversal
            let down_to_up = !up(c1) && up(c2); // the prohibited turn
            if continues && !down_to_up {
                deps.push((i as u32, j as u32));
            }
        }
    }

    // Forward adjacency over dependency edges, for per-destination
    // reachability.
    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); chans.len()];
    for &(a, b) in &deps {
        succ[a as usize].push(b);
    }
    let num_states = n + chans.len();
    let mut routes = Vec::with_capacity(n);
    for dest in 0..n as u32 {
        // good[c]: holding c, some legal continuation delivers at dest.
        let mut good = vec![false; chans.len()];
        let mut queue: std::collections::VecDeque<usize> = (0..chans.len())
            .filter(|&c| chans[c].1 == dest)
            .inspect(|&c| good[c] = true)
            .collect();
        let mut pred: Vec<Vec<u32>> = vec![Vec::new(); chans.len()];
        for &(a, b) in &deps {
            pred[b as usize].push(a);
        }
        while let Some(c) = queue.pop_front() {
            for &p in &pred[c] {
                if !good[p as usize] {
                    good[p as usize] = true;
                    queue.push_back(p as usize);
                }
            }
        }
        let mut table = vec![Vec::new(); num_states];
        for (c, &(a, _)) in chans.iter().enumerate() {
            if a != dest && good[c] {
                table[a as usize].push(c as u32);
            }
        }
        for (c, &(_, b)) in chans.iter().enumerate() {
            if b == dest {
                continue;
            }
            table[n + c] = succ[c]
                .iter()
                .copied()
                .filter(|&next| good[next as usize])
                .collect();
        }
        routes.push(table);
    }
    GraphSpec {
        name: name.into(),
        num_nodes,
        channels: verts,
        deps,
        routes,
    }
}

/// Lower an arbitrary connected netlist under *unrestricted* routing:
/// every non-reversing continuation is legal, and per destination the
/// relation offers exactly the channels from which the destination stays
/// reachable. On any netlist with an undirected cycle this relation is
/// cyclic — the irregular-topology analogue of `all_ninety` on a mesh,
/// and the raw material the synthesizer ([`crate::synth`]) splits into a
/// certified escape/adaptive assignment.
///
/// # Panics
///
/// Panics when a link endpoint is out of range, a link is a self-loop,
/// or the netlist is not connected.
pub fn from_netlist_unrestricted(
    name: impl Into<String>,
    num_nodes: u32,
    links: &[(u32, u32)],
) -> GraphSpec {
    let n = num_nodes as usize;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in links {
        assert!(
            a < num_nodes && b < num_nodes && a != b,
            "bad link ({a}, {b})"
        );
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    let mut seen = vec![false; n];
    seen[0] = true;
    let mut queue = std::collections::VecDeque::from([0u32]);
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v as usize] {
            if !seen[w as usize] {
                seen[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    assert!(seen.iter().all(|&s| s), "netlist is not connected");

    let chans: Vec<(u32, u32)> = links.iter().flat_map(|&(a, b)| [(a, b), (b, a)]).collect();
    let verts: Vec<ChannelVertex> = chans
        .iter()
        .map(|&(a, b)| ChannelVertex {
            src: a,
            dst: b,
            label: format!("{a} -> {b}"),
        })
        .collect();

    // Every non-reversing continuation is a potential dependency.
    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); chans.len()];
    for (i, &c1) in chans.iter().enumerate() {
        for (j, &c2) in chans.iter().enumerate() {
            if c2.0 == c1.1 && c2.1 != c1.0 {
                succ[i].push(j as u32);
            }
        }
    }
    let mut pred: Vec<Vec<u32>> = vec![Vec::new(); chans.len()];
    for (i, succs) in succ.iter().enumerate() {
        for &j in succs {
            pred[j as usize].push(i as u32);
        }
    }

    let num_states = n + chans.len();
    let mut routes = Vec::with_capacity(n);
    let mut deps = std::collections::BTreeSet::new();
    for dest in 0..n as u32 {
        let mut good = vec![false; chans.len()];
        let mut queue: std::collections::VecDeque<usize> = (0..chans.len())
            .filter(|&c| chans[c].1 == dest)
            .inspect(|&c| good[c] = true)
            .collect();
        while let Some(c) = queue.pop_front() {
            for &p in &pred[c] {
                if !good[p as usize] {
                    good[p as usize] = true;
                    queue.push_back(p as usize);
                }
            }
        }
        let mut table = vec![Vec::new(); num_states];
        for (c, &(a, _)) in chans.iter().enumerate() {
            if a != dest && good[c] {
                table[a as usize].push(c as u32);
            }
        }
        for (c, &(_, b)) in chans.iter().enumerate() {
            if b == dest {
                continue;
            }
            let moves: Vec<u32> = succ[c]
                .iter()
                .copied()
                .filter(|&next| good[next as usize])
                .collect();
            for &m in &moves {
                deps.insert((c as u32, m));
            }
            table[n + c] = moves;
        }
        routes.push(table);
    }
    GraphSpec {
        name: name.into(),
        num_nodes,
        channels: verts,
        deps: deps.into_iter().collect(),
        routes,
    }
}

/// A deliberately broken virtual-channel assignment: fully adaptive on
/// *both* y classes with no side discipline, which reintroduces the
/// dependency cycles the double-y rules exist to break. This is the
/// planted defect behind `turnprove --inject-bad` and the standing
/// negative control — the prover must emit a witness cycle for it, and
/// the checker must accept that witness.
pub struct PlantedCyclicVc;

impl VcRoutingFunction for PlantedCyclicVc {
    fn name(&self) -> &str {
        "planted-cyclic-vc"
    }

    fn route(
        &self,
        mesh: &Mesh,
        current: NodeId,
        dest: NodeId,
        _arrived: Option<VirtualDirection>,
    ) -> Vec<VirtualDirection> {
        use turnroute_topology::{Direction, Sign};
        let (c, d) = (mesh.coord_of(current), mesh.coord_of(dest));
        let mut out = Vec::new();
        if d.get(0) != c.get(0) {
            let sign = if d.get(0) > c.get(0) {
                Sign::Plus
            } else {
                Sign::Minus
            };
            out.push(VirtualDirection::new(Direction::new(0, sign), VcClass::One));
        }
        if d.get(1) != c.get(1) {
            let sign = if d.get(1) > c.get(1) {
                Sign::Plus
            } else {
                Sign::Minus
            };
            out.push(VirtualDirection::new(Direction::new(1, sign), VcClass::One));
            out.push(VirtualDirection::new(Direction::new(1, sign), VcClass::Two));
        }
        out
    }

    fn is_minimal(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_model::presets;
    use turnroute_vc::DoubleYAdaptive;

    #[test]
    fn turn_set_spec_is_well_formed_and_checkable() {
        let mesh = Mesh::new_2d(4, 4);
        let spec = from_turn_set("wf", &mesh, &presets::west_first_turns());
        assert_eq!(spec.num_nodes, 16);
        assert_eq!(spec.channels.len(), 48);
        let cert = crate::prove::prove(&spec);
        crate::check::check(&spec, &cert).expect("west-first certificate");
        assert!(cert.verdict.is_acyclic());
    }

    #[test]
    fn faulted_spec_excludes_dead_routes() {
        use turnroute_topology::Direction;
        let mesh = Mesh::new_2d(4, 4);
        let routing = TurnSetRouting::new("wf", presets::west_first_turns(), &mesh);
        let mut faults = FaultSet::new(&mesh);
        let victim = mesh.node_at_coords(&[1, 1]);
        faults.fail_link(&mesh, victim, Direction::EAST);
        let spec = from_faulted_routing("wf+f", &mesh, &routing, &faults);
        // The failed channel must never appear as a route target.
        let dead = mesh
            .channels()
            .iter()
            .find(|ch| ch.src() == victim && ch.dir() == Direction::EAST)
            .map(|ch| ch.id().0)
            .expect("channel exists");
        for table in &spec.routes {
            for outs in table {
                assert!(!outs.contains(&dead), "failed channel offered");
            }
        }
    }

    #[test]
    fn double_y_spec_has_virtual_vertices() {
        let mesh = Mesh::new_2d(4, 4);
        let spec = from_vc_routing("dy", &mesh, &DoubleYAdaptive::new());
        // 24 x channels + 48 doubled y channels.
        assert_eq!(spec.channels.len(), 72);
        assert!(spec.channels.iter().any(|v| v.label.contains("north2")));
    }

    #[test]
    fn netlist_up_down_is_acyclic_fully_connected_and_checkable() {
        // The irregular 6-node graph from the prove matrix: two triangles
        // bridged twice — not a mesh, not a tree, not vertex-symmetric.
        let spec = from_netlist(
            "netlist6",
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 5),
            ],
        );
        assert_eq!(spec.channels.len(), 16);
        // Every channel is labeled with its tree orientation.
        assert!(spec
            .channels
            .iter()
            .all(|v| { v.label.ends_with("(up)") != v.label.ends_with("(down)") }));
        let cert = crate::prove::prove(&spec);
        crate::check::check(&spec, &cert).expect("up*/down* certificate");
        assert!(cert.verdict.is_acyclic(), "down->up prohibition suffices");
        assert!(cert.unreachable.is_empty(), "up*/down* is fully connected");
        assert_eq!(cert.paths.len(), 30);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn netlist_extraction_rejects_disconnected_graphs() {
        from_netlist("split", 4, &[(0, 1), (2, 3)]);
    }

    #[test]
    fn planted_cyclic_vc_is_cyclic() {
        let mesh = Mesh::new_2d(4, 4);
        assert!(VcCdg::from_routing(&mesh, &PlantedCyclicVc)
            .find_cycle()
            .is_some());
    }

    #[test]
    fn hand_coded_and_tabulated_double_y_lower_identically() {
        // The dedupe guarantee: the hand-coded double-y function and the
        // table form the synthesizer emits share one VC-lowering path
        // (the generalized `VcCdg`), so snapshotting double-y into a
        // table and lowering both must agree channel for channel —
        // same vertices, same labels, same dependency relation, same
        // routing tables.
        let mesh = Mesh::new_2d(4, 4);
        let dy = DoubleYAdaptive::new();
        let table = turnroute_vc::TableVcRouting::from_function(&mesh, &dy);
        let direct = from_vc_routing("dy", &mesh, &dy);
        let via_table = from_vc_routing("dy", &mesh, &table);
        assert_eq!(direct.channels, via_table.channels, "channel-for-channel");
        assert_eq!(direct.deps, via_table.deps);
        assert_eq!(direct, via_table);
    }

    #[test]
    fn netlist_unrestricted_is_cyclic_but_connected() {
        let spec = from_netlist_unrestricted(
            "netlist6-unres",
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 5),
            ],
        );
        let cert = crate::prove::prove(&spec);
        crate::check::check(&spec, &cert).expect("cyclic certificate checks");
        assert!(!cert.verdict.is_acyclic(), "no discipline, no proof");
        assert_eq!(cert.paths.len(), 30, "still fully connected");
    }
}
