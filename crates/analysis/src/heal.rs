//! `turnheal` — certificate-gated online reconfiguration.
//!
//! The rest of the prover stack answers *offline* questions: given a
//! fault pattern, is the degraded relation deadlock free? This module
//! closes the loop *online*. [`run_healing`] owns a live [`Sim`] and, on
//! every fault transition the engine applies, runs one **healing epoch**:
//!
//! 1. **hold** — output arbitration pauses at the routers adjacent to the
//!    changed links/nodes ([`Sim::set_hold`]); in-flight worms keep
//!    draining, and everywhere else traffic degrades onto the same
//!    turn-legal misroute fallback the fault-masked verifier models;
//! 2. **re-extract** — the fault-masked channel graph is rebuilt through
//!    the verifier's own [`FaultMasked`] view
//!    ([`crate::extract::from_faulted_routing`]), so the online engine and
//!    the offline gate argue about the *same* relation;
//! 3. **re-prove, incrementally** — when only connectivity changed (every
//!    new dependency edge already respects the previous epoch's total
//!    channel numbering) the numbering is *reused*; violations are
//!    repaired locally Pearce–Kelly style; only a genuine cycle falls
//!    back to a full [`crate::prove::prove`] pass for a minimal witness.
//!    Connectivity certificates are recomputed every epoch regardless —
//!    the independent checker demands complete pair coverage;
//! 4. **gate** — the routing tables switch to the new masked relation
//!    only once [`crate::check::check`] has validated the certificate
//!    ([`HealEvent::TableSwap`]); if the relation is cyclic, the witness
//!    channels are quarantined ([`Sim::set_quarantine`], escape-path-only
//!    mode) and the reduced graph is re-proven until a certificate
//!    exists.
//!
//! The simulated **proof latency** of an epoch is a deterministic
//! function of the proof work actually performed (graph operations at
//! [`OPS_PER_CYCLE`] per cycle), so two same-seed runs heal at identical
//! cycles and their observability logs compare byte for byte. Every
//! transition is emitted through [`SimObserver::on_heal`] — epoch open,
//! proof, certificate digest, table swap, quarantine — which the obslog
//! crate records as its own event tags.
//!
//! [`FaultMasked`]: turnroute_model::FaultMasked

use crate::certificate::{Certificate, GraphSpec, Verdict};
use crate::{check, extract, prove};
use std::collections::HashSet;
use turnroute_model::RoutingFunction;
use turnroute_sim::{
    FaultEvent, FaultTarget, HealEvent, NoopObserver, Sim, SimConfig, SimObserver, SimReport,
};
use turnroute_topology::{Direction, FaultSet, NodeId, Topology};
use turnroute_traffic::TrafficPattern;

/// Graph operations the simulated prover retires per cycle. The proof
/// latency of an epoch is `1 + ops / OPS_PER_CYCLE` cycles, where `ops`
/// counts edges scanned, region vertices reordered, and connectivity
/// states relaxed — deterministic, so healing runs replay exactly.
pub const OPS_PER_CYCLE: u64 = 64;

/// Options controlling a healing run.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealOptions {
    /// Self-test of the certificate gate: on the first post-baseline
    /// epoch, *skip* the re-proof and submit the previous epoch's stale
    /// certificate for the new channel graph. The checker must reject it
    /// ([`HealReport::injected_caught`]); the run then proceeds on the
    /// genuine certificate so the soak still completes.
    pub inject_bad: bool,
}

/// One completed healing epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRecord {
    /// Epoch number; 0 is the pre-traffic baseline proof.
    pub epoch: u32,
    /// Cycle the epoch opened (fault transition applied).
    pub opened_at: u64,
    /// Cycle the certificate gate resolved and holds released.
    pub completed_at: u64,
    /// Fault-plan transitions folded into this epoch.
    pub transitions: u32,
    /// Simulated proof latency in cycles.
    pub proof_latency: u64,
    /// Whether the previous numbering was reused or locally repaired
    /// (`false` means a full re-prove, including every quarantine pass).
    pub incremental: bool,
    /// Whether the masked relation itself was acyclic. `false` engaged
    /// quarantine: the certificate covers the reduced graph.
    pub acyclic: bool,
    /// Whether the independent checker validated the epoch's certificate.
    pub checker_ok: bool,
    /// Whether this record is the `--inject-bad` stale-certificate
    /// submission (its `checker_ok` is expected to be `false`).
    pub injected: bool,
    /// FNV-1a digest of the certificate's canonical content.
    pub cert_hash: u64,
    /// Channels quarantined by this epoch's certificate.
    pub quarantined_channels: u32,
}

/// Summary of a healing run: every epoch plus the simulation report.
#[derive(Debug, Clone)]
pub struct HealReport {
    /// Configuration label (`heal/<routing>`).
    pub config: String,
    /// Every epoch, in completion order.
    pub epochs: Vec<EpochRecord>,
    /// With [`HealOptions::inject_bad`]: whether the checker rejected the
    /// stale certificate. `None` when no injection ran.
    pub injected_caught: Option<bool>,
    /// The underlying simulation's report.
    pub sim: SimReport,
}

impl HealReport {
    /// Every genuine (non-injected) epoch carries a checker-validated
    /// certificate.
    pub fn certified(&self) -> bool {
        !self.epochs.is_empty() && self.epochs.iter().all(|e| e.injected || e.checker_ok)
    }

    /// Epochs that reused or locally repaired the previous numbering.
    pub fn incremental_epochs(&self) -> usize {
        self.epochs.iter().filter(|e| e.incremental).count()
    }

    /// The run's overall verdict: certificates for every epoch, no
    /// deadlock, and (when the self-test ran) the stale certificate was
    /// caught.
    pub fn passed(&self) -> bool {
        self.certified() && !self.sim.deadlocked && self.injected_caught.unwrap_or(true)
    }

    /// Human-readable summary, one line per epoch.
    pub fn render(&self) -> String {
        let mut out = format!(
            "turnheal {} — {} epochs ({} incremental), delivered {}/{}, {}\n",
            self.config,
            self.epochs.len(),
            self.incremental_epochs(),
            self.sim.delivered_packets,
            self.sim.generated_packets,
            if self.passed() { "PASS" } else { "FAIL" },
        );
        for e in &self.epochs {
            out.push_str(&format!(
                "  epoch {:>3} @{:>8} +{:>3}cy {} {} cert={:016x}{}{}{}\n",
                e.epoch,
                e.opened_at,
                e.proof_latency,
                if e.incremental { "inc " } else { "full" },
                if e.checker_ok { "ok " } else { "ERR" },
                e.cert_hash,
                if e.acyclic { "" } else { " CYCLIC" },
                if e.quarantined_channels > 0 {
                    " quarantined"
                } else {
                    ""
                },
                if e.injected { " (injected)" } else { "" },
            ));
        }
        out
    }
}

/// Stable FNV-1a digest of a certificate's canonical content: verdict tag
/// and numbering (or witness cycle), then every path certificate, then
/// every unreachable claim — all fields the checker validates, none of
/// the free-form labels.
pub fn certificate_hash(cert: &Certificate) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    fn mix(h: &mut u64, x: u64) {
        for b in x.to_le_bytes() {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    match &cert.verdict {
        Verdict::Acyclic { numbering } => {
            mix(&mut h, 1);
            mix(&mut h, numbering.len() as u64);
            for &x in numbering {
                mix(&mut h, x);
            }
        }
        Verdict::Cyclic { cycle } => {
            mix(&mut h, 2);
            mix(&mut h, cycle.len() as u64);
            for &c in cycle {
                mix(&mut h, c.into());
            }
        }
    }
    mix(&mut h, cert.paths.len() as u64);
    for p in &cert.paths {
        mix(&mut h, p.src.into());
        mix(&mut h, p.dst.into());
        mix(&mut h, p.path.len() as u64);
        for &c in &p.path {
            mix(&mut h, c.into());
        }
    }
    mix(&mut h, cert.unreachable.len() as u64);
    for &(s, d) in &cert.unreachable {
        mix(&mut h, s.into());
        mix(&mut h, d.into());
    }
    h
}

/// The previous epoch's proof state carried into the next incremental
/// attempt: the dependency edge set it was proven over and the total
/// numbering that orders it.
struct Prior {
    deps: HashSet<(u32, u32)>,
    numbering: Vec<u64>,
}

/// Repair `prior`'s numbering for the dependency edges of the new epoch,
/// Pearce–Kelly style. Edge removals never invalidate a numbering, so
/// only *added* edges are examined: satisfied ones are free, violations
/// reorder just the affected region. Returns `None` when an added edge
/// closes a cycle (the caller falls back to a full prove for a minimal
/// witness); `ops` accumulates the work performed either way.
fn repair_numbering(
    n: usize,
    prior: &Prior,
    deps: &[(u32, u32)],
    ops: &mut u64,
) -> Option<Vec<u64>> {
    let mut num = prior.numbering.clone();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut radj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut added = Vec::new();
    for &(a, b) in deps {
        *ops += 1;
        if prior.deps.contains(&(a, b)) {
            adj[a as usize].push(b);
            radj[b as usize].push(a);
        } else {
            added.push((a, b));
        }
    }
    for (a, b) in added {
        let (ai, bi) = (a as usize, b as usize);
        *ops += 1;
        if num[ai] >= num[bi] {
            // Affected region: forward from b among positions <= num[a]
            // (a valid order bounds any b→a path below num[a]), backward
            // from a among positions >= num[b].
            let (lb, ub) = (num[bi], num[ai]);
            let mut fwd = Vec::new();
            let mut seen = vec![false; n];
            let mut stack = vec![bi];
            seen[bi] = true;
            while let Some(v) = stack.pop() {
                if v == ai {
                    return None; // b reaches a: the new edge closes a cycle
                }
                fwd.push(v);
                for &w in &adj[v] {
                    *ops += 1;
                    let wi = w as usize;
                    if !seen[wi] && num[wi] <= ub {
                        seen[wi] = true;
                        stack.push(wi);
                    }
                }
            }
            let mut bwd = Vec::new();
            let mut stack = vec![ai];
            seen[ai] = true;
            while let Some(v) = stack.pop() {
                bwd.push(v);
                for &w in &radj[v] {
                    *ops += 1;
                    let wi = w as usize;
                    if !seen[wi] && num[wi] >= lb {
                        seen[wi] = true;
                        stack.push(wi);
                    }
                }
            }
            // Reassign the pooled positions: backward region first (it
            // must precede), then forward, each in its old relative order.
            bwd.sort_by_key(|&v| num[v]);
            fwd.sort_by_key(|&v| num[v]);
            let mut pool: Vec<u64> = bwd.iter().chain(&fwd).map(|&v| num[v]).collect();
            pool.sort_unstable();
            for (v, p) in bwd.iter().chain(&fwd).zip(pool) {
                *ops += 1;
                num[*v] = p;
            }
        }
        adj[ai].push(b);
        radj[bi].push(a);
    }
    Some(num)
}

/// The proof of one epoch (possibly after quarantine passes).
struct EpochProof {
    cert: Certificate,
    /// Whether the *first* proof attempt (before quarantine) was acyclic.
    masked_acyclic: bool,
    incremental: bool,
    ops: u64,
    quarantine: Vec<(NodeId, Direction)>,
}

/// Prove the fault-masked relation of `faults`, quarantining witness
/// cycles until a certificate exists. The returned certificate always
/// carries an acyclic verdict — over the masked graph itself when the
/// turn discipline held, or over the quarantine-reduced graph otherwise —
/// and the spec it certifies.
fn prove_epoch(
    label: &str,
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    faults: &FaultSet,
    prior: Option<&Prior>,
) -> (GraphSpec, EpochProof) {
    let channels = topo.channels();
    let mut overlay = faults.clone();
    let mut quarantine: Vec<(NodeId, Direction)> = Vec::new();
    let mut ops = 0u64;
    let mut masked_acyclic = None;
    let mut incremental = false;
    loop {
        let spec = extract::from_faulted_routing(label.to_string(), topo, routing, &overlay);
        let n = spec.channels.len();
        let verdict = match prior {
            // Quarantine passes re-prove from scratch: the reduced graph
            // diverges too far for the previous numbering to be a prior.
            Some(p) if p.numbering.len() == n && quarantine.is_empty() => {
                match repair_numbering(n, p, &spec.deps, &mut ops) {
                    Some(numbering) => {
                        incremental = true;
                        Verdict::Acyclic { numbering }
                    }
                    None => {
                        incremental = false;
                        ops += (n + spec.deps.len()) as u64;
                        prove::verdict_of(&spec)
                    }
                }
            }
            _ => {
                ops += (n + spec.deps.len()) as u64;
                prove::verdict_of(&spec)
            }
        };
        if verdict.is_acyclic() {
            let acyclic_masked = *masked_acyclic.get_or_insert(true);
            // Connectivity is recomputed every epoch: the checker demands
            // complete ordered-pair coverage per certificate.
            let (paths, unreachable) = prove::connectivity(&spec);
            ops += spec.num_nodes as u64 * (n as u64 + spec.num_nodes as u64);
            let cert = Certificate {
                verdict,
                paths,
                unreachable,
            };
            return (
                spec,
                EpochProof {
                    cert,
                    masked_acyclic: acyclic_masked,
                    incremental,
                    ops,
                    quarantine,
                },
            );
        }
        let Verdict::Cyclic { cycle } = verdict else {
            unreachable!("non-acyclic verdict is cyclic");
        };
        masked_acyclic.get_or_insert(false);
        incremental = false;
        assert!(
            quarantine.len() < channels.len(),
            "quarantine cannot exceed the channel count"
        );
        for &c in &cycle {
            let ch = &channels[c as usize];
            if !overlay.link_failed_at(topo, ch.src(), ch.dir()) {
                overlay.fail_link(topo, ch.src(), ch.dir());
                quarantine.push((ch.src(), ch.dir()));
            }
        }
    }
}

/// A healing epoch in flight: opened on a fault transition, resolved at
/// `due` once its simulated proof latency has elapsed. A further
/// transition before `due` extends the same epoch with a fresh proof.
struct Pending {
    epoch: u32,
    opened_at: u64,
    due: u64,
    transitions: u32,
    spec: GraphSpec,
    proof: EpochProof,
}

/// Run the warmup → measure → drain protocol with the healing engine
/// attached, returning the heal report and the observer (through which
/// every [`HealEvent`] was emitted).
pub fn run_healing<O: SimObserver>(
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    pattern: &dyn TrafficPattern,
    cfg: SimConfig,
    observer: O,
    opts: &HealOptions,
) -> (HealReport, O) {
    let config = format!("heal/{}", routing.name());
    let plan = cfg.fault_plan.clone();
    let events = plan.events();
    let measure_start = cfg.warmup_cycles;
    let measure_end = measure_start + cfg.measure_cycles;
    let total_end = measure_end + cfg.drain_cycles;
    let mut sim = Sim::with_observer(topo, routing, pattern, cfg, observer);
    sim.set_measure_window(measure_start, measure_end);

    let mut records: Vec<EpochRecord> = Vec::new();
    let mut injected_caught: Option<bool> = None;
    let mut prior: Option<Prior> = None;
    let mut last_cert: Option<(GraphSpec, Certificate)> = None;
    let mut held: HashSet<NodeId> = HashSet::new();
    let mut active_quarantine: Vec<(NodeId, Direction)> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut next_epoch: u32 = 1;
    let mut applied_seen = 0usize;

    // Epoch 0: the pre-traffic baseline. The pristine relation is proven
    // and gated before the first cycle, priming the numbering every later
    // epoch repairs (and, for an undisciplined relation, engaging
    // quarantine from the start).
    {
        let (spec, proof) = prove_epoch(
            &format!("{config}/epoch0"),
            topo,
            routing,
            &FaultSet::new(topo),
            None,
        );
        let latency = 1 + proof.ops / OPS_PER_CYCLE;
        sim.observer_mut().on_heal(
            0,
            HealEvent::EpochOpen {
                epoch: 0,
                transitions: 0,
            },
        );
        complete_epoch(
            &mut sim,
            topo,
            Pending {
                epoch: 0,
                opened_at: 0,
                due: 0,
                transitions: 0,
                spec,
                proof,
            },
            latency,
            false,
            &mut records,
            &mut prior,
            &mut last_cert,
            &mut held,
            &mut active_quarantine,
            &mut injected_caught,
        );
    }

    // Main loop: step, fold freshly applied fault transitions into an
    // epoch (opening or extending one), resolve the epoch at its due
    // cycle. After the configured horizon, an epoch still in flight is
    // allowed to resolve so every transition ends under a certificate.
    let hard_end = total_end + 100_000;
    while !sim.deadlocked()
        && (sim.now() < total_end || (pending.is_some() && sim.now() < hard_end))
    {
        sim.step();
        let t = sim.now() - 1;
        let applied = sim.applied_fault_events();
        if applied > applied_seen {
            let fresh = &events[applied_seen..applied];
            let transitions = fresh.len() as u32;
            for node in region_of(topo, fresh) {
                sim.set_hold(node, true);
                held.insert(node);
            }
            applied_seen = applied;
            let (epoch, opened_at, folded) = match pending.take() {
                Some(p) => (p.epoch, p.opened_at, p.transitions + transitions),
                None => {
                    let e = next_epoch;
                    next_epoch += 1;
                    (e, t, transitions)
                }
            };
            sim.observer_mut()
                .on_heal(t, HealEvent::EpochOpen { epoch, transitions });
            let faults = plan.fault_set_at(t, topo);
            let (spec, proof) = prove_epoch(
                &format!("{config}/epoch{epoch}"),
                topo,
                routing,
                &faults,
                prior.as_ref(),
            );
            let due = t + 1 + proof.ops / OPS_PER_CYCLE;
            pending = Some(Pending {
                epoch,
                opened_at,
                due,
                transitions: folded,
                spec,
                proof,
            });
        }
        if pending.as_ref().is_some_and(|p| sim.now() >= p.due) {
            let p = pending.take().expect("pending checked above");
            let latency = p.due - p.opened_at;
            let inject = opts.inject_bad && injected_caught.is_none();
            complete_epoch(
                &mut sim,
                topo,
                p,
                latency,
                inject,
                &mut records,
                &mut prior,
                &mut last_cert,
                &mut held,
                &mut active_quarantine,
                &mut injected_caught,
            );
        }
    }

    let sim_report = sim.report();
    let observer = sim.into_observer();
    (
        HealReport {
            config,
            epochs: records,
            injected_caught,
            sim: sim_report,
        },
        observer,
    )
}

/// [`run_healing`] with no observer attached.
pub fn run_healing_sim(
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    pattern: &dyn TrafficPattern,
    cfg: SimConfig,
    opts: &HealOptions,
) -> HealReport {
    run_healing(topo, routing, pattern, cfg, NoopObserver, opts).0
}

/// The routers adjacent to a batch of fault transitions: both endpoints
/// of each changed link, a changed node and all its neighbors. This is
/// the region whose arbitration pauses while the epoch re-proves.
fn region_of(topo: &dyn Topology, events: &[FaultEvent]) -> HashSet<NodeId> {
    let mut region = HashSet::new();
    for ev in events {
        match ev.target {
            FaultTarget::Link { node, dir } => {
                region.insert(node);
                if let Some(peer) = topo.neighbor(node, dir) {
                    region.insert(peer);
                }
            }
            FaultTarget::Node(v) => {
                region.insert(v);
                for dir in Direction::all(topo.num_dims()) {
                    if let Some(peer) = topo.neighbor(v, dir) {
                        region.insert(peer);
                    }
                }
            }
        }
    }
    region
}

/// Resolve one epoch at its due cycle: validate the certificate through
/// the independent checker (first the stale one, when injecting), emit
/// the proof/certificate/swap/quarantine events, reconcile the engine's
/// quarantine flags, release the holds, and record the epoch.
#[allow(clippy::too_many_arguments)]
fn complete_epoch<O: SimObserver>(
    sim: &mut Sim<'_, O>,
    topo: &dyn Topology,
    p: Pending,
    latency: u64,
    inject: bool,
    records: &mut Vec<EpochRecord>,
    prior: &mut Option<Prior>,
    last_cert: &mut Option<(GraphSpec, Certificate)>,
    held: &mut HashSet<NodeId>,
    active_quarantine: &mut Vec<(NodeId, Direction)>,
    injected_caught: &mut Option<bool>,
) {
    let now = sim.now();
    // A transient that heals before its proof resolves leaves the masked
    // graph identical to the last certified one; the stale certificate is
    // then genuinely valid, so the self-test waits for an epoch that
    // actually moved the graph.
    let stale = last_cert
        .as_ref()
        .filter(|(s, _)| s.deps != p.spec.deps || s.routes != p.spec.routes)
        .map(|(_, cert)| cert);
    if let (true, Some(stale)) = (inject, stale) {
        // The self-test: pretend the re-proof was skipped and the stale
        // certificate submitted for the new graph. The gate must refuse.
        let stale_ok = check::check(&p.spec, stale).is_ok();
        *injected_caught = Some(!stale_ok);
        records.push(EpochRecord {
            epoch: p.epoch,
            opened_at: p.opened_at,
            completed_at: now,
            transitions: p.transitions,
            proof_latency: latency,
            incremental: false,
            acyclic: p.proof.masked_acyclic,
            checker_ok: stale_ok,
            injected: true,
            cert_hash: certificate_hash(stale),
            quarantined_channels: 0,
        });
    }
    let checker_ok = check::check(&p.spec, &p.proof.cert).is_ok();
    let hash = certificate_hash(&p.proof.cert);
    sim.observer_mut().on_heal(
        now,
        HealEvent::Proof {
            epoch: p.epoch,
            latency,
            incremental: p.proof.incremental,
            acyclic: p.proof.masked_acyclic,
        },
    );
    sim.observer_mut().on_heal(
        now,
        HealEvent::Certificate {
            epoch: p.epoch,
            hash,
        },
    );
    if checker_ok {
        // Reconcile quarantine: release channels the new certificate no
        // longer excludes, exclude the ones it does.
        for &(node, dir) in active_quarantine.iter() {
            if !p.proof.quarantine.contains(&(node, dir)) {
                sim.set_quarantine(node, dir, false);
                sim.observer_mut().on_heal(
                    now,
                    HealEvent::Quarantine {
                        epoch: p.epoch,
                        slot: topo.channel_slot(node, dir) as u32,
                        on: false,
                    },
                );
            }
        }
        for &(node, dir) in &p.proof.quarantine {
            if !active_quarantine.contains(&(node, dir)) {
                sim.set_quarantine(node, dir, true);
                sim.observer_mut().on_heal(
                    now,
                    HealEvent::Quarantine {
                        epoch: p.epoch,
                        slot: topo.channel_slot(node, dir) as u32,
                        on: true,
                    },
                );
            }
        }
        *active_quarantine = p.proof.quarantine.clone();
        sim.observer_mut()
            .on_heal(now, HealEvent::TableSwap { epoch: p.epoch });
        if let Verdict::Acyclic { numbering } = &p.proof.cert.verdict {
            *prior = Some(Prior {
                deps: p.spec.deps.iter().copied().collect(),
                numbering: numbering.clone(),
            });
        }
        *last_cert = Some((p.spec.clone(), p.proof.cert.clone()));
    }
    for node in held.drain() {
        sim.set_hold(node, false);
    }
    records.push(EpochRecord {
        epoch: p.epoch,
        opened_at: p.opened_at,
        completed_at: now,
        transitions: p.transitions,
        proof_latency: latency,
        incremental: p.proof.incremental,
        acyclic: p.proof.masked_acyclic,
        checker_ok,
        injected: false,
        cert_hash: hash,
        quarantined_channels: p.proof.quarantine.len() as u32,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_routing::{hex, mesh2d, FullyAdaptive, RoutingMode};
    use turnroute_sim::FaultPlan;
    use turnroute_topology::{HexMesh, Mesh, NodeId};
    use turnroute_traffic::Uniform;

    /// Counts every healing event forwarded through the observer hook.
    #[derive(Default)]
    struct HealCounter {
        opens: u32,
        proofs: u32,
        certs: u32,
        swaps: u32,
        quarantines: u32,
    }

    impl SimObserver for HealCounter {
        fn on_heal(&mut self, _now: u64, ev: HealEvent) {
            match ev {
                HealEvent::EpochOpen { .. } => self.opens += 1,
                HealEvent::Proof { .. } => self.proofs += 1,
                HealEvent::Certificate { .. } => self.certs += 1,
                HealEvent::TableSwap { .. } => self.swaps += 1,
                HealEvent::Quarantine { .. } => self.quarantines += 1,
            }
        }
    }

    fn heal_cfg(plan: FaultPlan) -> SimConfig {
        SimConfig::builder()
            .injection_rate(0.05)
            .warmup_cycles(200)
            .measure_cycles(2_000)
            .drain_cycles(2_000)
            .packet_timeout(600)
            .max_retries(2)
            .fault_plan(plan)
            .seed(5)
            .build()
    }

    #[test]
    fn repair_reuses_and_reorders_and_detects_cycles() {
        // Prior: a 4-chain 0→1→2→3 numbered in order.
        let prior = Prior {
            deps: [(0, 1), (1, 2), (2, 3)].into_iter().collect(),
            numbering: vec![0, 1, 2, 3],
        };
        let mut ops = 0;
        // All edges retained → numbering reused verbatim.
        let same = repair_numbering(4, &prior, &[(0, 1), (1, 2), (2, 3)], &mut ops).unwrap();
        assert_eq!(same, vec![0, 1, 2, 3]);
        // Added satisfied edge: free.
        let easy = repair_numbering(4, &prior, &[(0, 1), (1, 2), (2, 3), (0, 3)], &mut ops);
        assert_eq!(easy.unwrap(), vec![0, 1, 2, 3]);
        // Added violating but acyclic edge 3→… needs a reorder: drop
        // (2,3), add (3,2). Valid orders must put 3 before 2.
        let fixed = repair_numbering(4, &prior, &[(0, 1), (1, 2), (3, 2)], &mut ops).unwrap();
        assert!(fixed[3] < fixed[2], "{fixed:?}");
        assert!(fixed[0] < fixed[1] && fixed[1] < fixed[2]);
        // Added cycle-closing edge must be detected.
        assert!(repair_numbering(4, &prior, &[(0, 1), (1, 2), (2, 3), (3, 0)], &mut ops).is_none());
        assert!(ops > 0);
    }

    #[test]
    fn transient_fault_heals_with_certificates_for_every_epoch() {
        let mesh = Mesh::new_2d(6, 6);
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let plan = FaultPlan::new().transient_link(
            mesh.node_at_coords(&[2, 2]),
            turnroute_topology::Direction::EAST,
            500,
            700,
        );
        let (report, counter) = run_healing(
            &mesh,
            &wf,
            &Uniform::new(),
            heal_cfg(plan),
            HealCounter::default(),
            &HealOptions::default(),
        );
        assert!(report.passed(), "{}", report.render());
        // Baseline + fail + heal = three epochs, all certified.
        assert_eq!(report.epochs.len(), 3, "{}", report.render());
        assert!(report.certified());
        // The heal epoch restores dependency edges: the numbering is
        // repaired, not re-derived.
        assert!(
            report.epochs[2].incremental,
            "heal epoch should be incremental: {}",
            report.render()
        );
        assert!(report.sim.delivered_packets > 0);
        // Every epoch produced its open/proof/certificate/swap events.
        assert_eq!(counter.opens, 3);
        assert_eq!(counter.proofs, 3);
        assert_eq!(counter.certs, 3);
        assert_eq!(counter.swaps, 3);
        assert_eq!(counter.quarantines, 0);
    }

    #[test]
    fn healing_runs_replay_byte_identically() {
        let mesh = Mesh::new_2d(6, 6);
        let nl = mesh2d::north_last(RoutingMode::Minimal);
        let plan = FaultPlan::new()
            .transient_link(NodeId(7), turnroute_topology::Direction::NORTH, 300, 400)
            .transient_node(NodeId(14), 900, 300);
        let run = || {
            run_healing_sim(
                &mesh,
                &nl,
                &Uniform::new(),
                heal_cfg(plan.clone()),
                &HealOptions::default(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.epochs, b.epochs, "same seed, same healing history");
        assert_eq!(a.sim.delivered_packets, b.sim.delivered_packets);
        assert!(a.passed(), "{}", a.render());
    }

    #[test]
    fn healing_log_records_every_transition_and_is_byte_stable() {
        use turnroute_obslog::{verify_bytes, LogObserver};
        let mesh = Mesh::new_2d(6, 6);
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let plan = FaultPlan::new().transient_link(
            mesh.node_at_coords(&[3, 3]),
            turnroute_topology::Direction::WEST,
            400,
            600,
        );
        let pattern = Uniform::new();
        let record = || {
            let cfg = heal_cfg(plan.clone());
            let log = LogObserver::start(&mesh, &wf, &pattern, &cfg, "sim");
            let (report, log) =
                run_healing(&mesh, &wf, &pattern, cfg, log, &HealOptions::default());
            assert!(report.passed(), "{}", report.render());
            (report, log.finish())
        };
        let (report, bytes) = record();
        let s = verify_bytes(&bytes).expect("healing log must verify");
        // Every epoch's full transition sequence landed in the log.
        let epochs = report.epochs.len() as u64;
        assert_eq!(s.count("heal_epoch"), epochs);
        assert_eq!(s.count("heal_proof"), epochs);
        assert_eq!(s.count("heal_cert"), epochs);
        assert_eq!(s.count("heal_swap"), epochs);
        assert_eq!(s.count("fault"), 2, "one down edge, one up edge");
        // Same seed, same storm: the sealed logs are byte-identical.
        let (_, again) = record();
        assert_eq!(bytes, again, "healing log must be byte-deterministic");
    }

    #[test]
    fn cyclic_relation_is_quarantined_into_a_certificate() {
        // Fully adaptive minimal routing has a cyclic CDG: the baseline
        // epoch must engage escape-path-only mode and still certify the
        // reduced graph.
        let mesh = Mesh::new_2d(4, 4);
        let report = run_healing_sim(
            &mesh,
            &FullyAdaptive::new(),
            &Uniform::new(),
            heal_cfg(FaultPlan::new()),
            &HealOptions::default(),
        );
        let base = &report.epochs[0];
        assert!(!base.acyclic, "fully adaptive must be cyclic");
        assert!(base.quarantined_channels > 0);
        assert!(base.checker_ok, "reduced graph must certify");
        assert!(report.certified(), "{}", report.render());
    }

    #[test]
    fn hex_mesh_heals_under_the_same_protocol() {
        let hexm = HexMesh::new(4, 4);
        let nf = hex::negative_first_hex(RoutingMode::Minimal);
        let victim = hexm.node_at_axial(1, 1);
        let dir = turnroute_topology::Direction::all(3)
            .find(|&d| hexm.neighbor(victim, d).is_some())
            .expect("interior hex node has neighbors");
        let plan = FaultPlan::new().transient_link(victim, dir, 400, 600);
        let report = run_healing_sim(
            &hexm,
            &nf,
            &Uniform::new(),
            heal_cfg(plan),
            &HealOptions::default(),
        );
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.epochs.len(), 3);
        assert!(report.sim.delivered_packets > 0);
    }

    #[test]
    fn stale_certificate_is_caught_by_the_gate() {
        let mesh = Mesh::new_2d(6, 6);
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let plan = FaultPlan::new().transient_link(
            mesh.node_at_coords(&[1, 2]),
            turnroute_topology::Direction::NORTH,
            400,
            500,
        );
        let report = run_healing_sim(
            &mesh,
            &wf,
            &Uniform::new(),
            heal_cfg(plan),
            &HealOptions { inject_bad: true },
        );
        assert_eq!(report.injected_caught, Some(true), "{}", report.render());
        let injected: Vec<_> = report.epochs.iter().filter(|e| e.injected).collect();
        assert_eq!(injected.len(), 1);
        assert!(!injected[0].checker_ok, "stale cert must be rejected");
        // The genuine certificates still gate the run to completion.
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn certificate_hash_distinguishes_content() {
        let mesh = Mesh::new_2d(4, 4);
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let spec = extract::from_routing("wf", &mesh, &wf);
        let cert = prove::prove(&spec);
        assert_eq!(certificate_hash(&cert), certificate_hash(&cert));
        let mut other = cert.clone();
        if let Verdict::Acyclic { numbering } = &mut other.verdict {
            numbering.swap(0, 1);
        }
        assert_ne!(certificate_hash(&cert), certificate_hash(&other));
    }
}
