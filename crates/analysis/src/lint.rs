//! The `turnlint` driver: run every analysis layer and bundle the
//! verdicts into one report with human diagnostics and a JSON artifact.
//!
//! Three layers run in sequence:
//!
//! 1. **Design-space enumeration** ([`crate::enumeration`]) — the paper's
//!    censuses and the exhaustive subset sweeps, each count asserted
//!    against the paper's number, failures carrying witness cycles.
//! 2. **Verification matrix** — every shipped routing algorithm verified
//!    on its topology through [`turnroute_model::verifier::verify`]
//!    (deadlock freedom, connectivity, minimality, progress, channel
//!    validity, turn-set consistency), plus fault-masked verification and
//!    negative controls proving the analyzer actually rejects broken
//!    relations (fully adaptive routing, an unrestricted wanderer).
//! 3. **Invariant-sanitized simulations** — full runs of both wormhole
//!    engines with the [`turnroute_sim::InvariantObserver`] shadow model
//!    attached: flit conservation, buffer accounting, and per-cycle
//!    bandwidth invariants audited every cycle.
//!
//! [`LintReport::passed`] is the CI verdict; [`LintReport::to_json`]
//! renders the machine-readable artifact written to
//! `results/turnlint.json`.

use crate::claim::{witness_cycle, Claim};
use crate::enumeration;
use crate::routing::{find_dead_end, TurnSetRouting};
use turnroute_model::livelock::check_progress;
use turnroute_model::verifier::{verify, verify_under_faults, Check};
use turnroute_model::{Cdg, RoutingFunction, Turn, TurnSet};
use turnroute_routing::torus::{NegativeFirstTorus, WrapOnFirstHop};
use turnroute_routing::{hypercube, mesh2d, ndmesh, FullyAdaptive, RoutingMode};
use turnroute_sim::obs::{json, ChannelLayout};
use turnroute_sim::{FaultPlan, InvariantObserver, InvariantSummary, Sim, SimConfig};
use turnroute_topology::{Direction, FaultSet, Hypercube, Mesh, Topology, Torus};
use turnroute_traffic::{MeshTranspose, TrafficPattern, Uniform};
use turnroute_vc::{DoubleYAdaptive, VcSim};

/// Options controlling a lint run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOptions {
    /// Shrink simulation lengths and skip the 3D census (CI-friendly).
    pub quick: bool,
    /// Inject a deliberately broken turn set; the run must then fail
    /// with a witness cycle (self-test of the gate itself).
    pub inject_bad: bool,
    /// Report globally-minimal witness cycles (BFS girth search) instead
    /// of the first cycle depth-first search happens to hit, and add a
    /// claim pinning the unrestricted mesh CDG girth.
    pub min_witness: bool,
}

/// One row of the algorithm × topology verification matrix.
#[derive(Debug, Clone)]
pub struct MatrixEntry {
    /// Topology the algorithm was verified on.
    pub topology: String,
    /// Algorithm name as reported by the routing function.
    pub algorithm: String,
    /// Names of the checks this row requires to pass.
    pub required: Vec<String>,
    /// Failed required checks, as `name: message` strings.
    pub failures: Vec<String>,
}

impl MatrixEntry {
    /// Whether every required check passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// One invariant-sanitized simulation run.
#[derive(Debug, Clone)]
pub struct SanitizerRun {
    /// Which engine ran (`sim` or `vc`).
    pub engine: String,
    /// Routing algorithm under test.
    pub algorithm: String,
    /// Traffic pattern driving the run.
    pub pattern: String,
    /// Whether the run ended in detected deadlock (must not).
    pub deadlocked: bool,
    /// Shadow-model accounting totals at end of run.
    pub summary: InvariantSummary,
    /// Recorded invariant violations (must be empty).
    pub violations: Vec<String>,
}

impl SanitizerRun {
    /// Whether the run completed without deadlock or violations.
    pub fn ok(&self) -> bool {
        !self.deadlocked && self.violations.is_empty()
    }
}

/// The complete outcome of a lint run.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Whether the run used the shortened quick profile.
    pub quick: bool,
    /// Enumeration, progress, and negative-control claims.
    pub claims: Vec<Claim>,
    /// The verification matrix.
    pub matrix: Vec<MatrixEntry>,
    /// The sanitized simulation runs.
    pub sanitizer: Vec<SanitizerRun>,
}

impl LintReport {
    /// The overall CI verdict.
    pub fn passed(&self) -> bool {
        self.claims.iter().all(|c| c.passed)
            && self.matrix.iter().all(MatrixEntry::ok)
            && self.sanitizer.iter().all(SanitizerRun::ok)
    }

    /// Human-readable diagnostics, one block per layer.
    pub fn render(&self) -> String {
        let mut out = String::from("== turnlint: design-space claims ==\n");
        for c in &self.claims {
            out.push_str(&c.render());
            out.push('\n');
        }
        out.push_str("\n== turnlint: verification matrix ==\n");
        for m in &self.matrix {
            if m.ok() {
                out.push_str(&format!(
                    "ok   {:<28} on {:<18} ({})\n",
                    m.algorithm,
                    m.topology,
                    m.required.join(", ")
                ));
            } else {
                out.push_str(&format!("FAIL {:<28} on {}\n", m.algorithm, m.topology));
                for f in &m.failures {
                    out.push_str(&format!("       {f}\n"));
                }
            }
        }
        out.push_str("\n== turnlint: invariant sanitizer ==\n");
        for s in &self.sanitizer {
            out.push_str(&format!(
                "{} {:<4} {:<28} {:<16} sourced {} consumed {} purged {} in-flight {} over {} cycles\n",
                if s.ok() { "ok  " } else { "FAIL" },
                s.engine,
                s.algorithm,
                s.pattern,
                s.summary.sourced_flits,
                s.summary.consumed_flits,
                s.summary.purged_flits,
                s.summary.in_flight_flits,
                s.summary.audited_cycles,
            ));
            for v in &s.violations {
                out.push_str(&format!("       {v}\n"));
            }
            if s.deadlocked {
                out.push_str("       run ended in detected deadlock\n");
            }
        }
        out.push_str(&format!(
            "\nturnlint: {}\n",
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// Machine-readable form of the whole report.
    pub fn to_json(&self) -> String {
        let claims: Vec<String> = self
            .claims
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\":{},\"detail\":{},\"expected\":{},\"actual\":{},\"passed\":{}{}}}",
                    json::string(&c.name),
                    json::string(&c.detail),
                    json::string(&c.expected),
                    json::string(&c.actual),
                    c.passed,
                    match &c.witness {
                        Some(w) => format!(",\"witness\":{}", json::string(w)),
                        None => String::new(),
                    }
                )
            })
            .collect();
        let matrix: Vec<String> = self
            .matrix
            .iter()
            .map(|m| {
                format!(
                    "{{\"topology\":{},\"algorithm\":{},\"ok\":{},\"required\":[{}],\"failures\":[{}]}}",
                    json::string(&m.topology),
                    json::string(&m.algorithm),
                    m.ok(),
                    m.required
                        .iter()
                        .map(|r| json::string(r))
                        .collect::<Vec<_>>()
                        .join(","),
                    m.failures
                        .iter()
                        .map(|f| json::string(f))
                        .collect::<Vec<_>>()
                        .join(","),
                )
            })
            .collect();
        let sanitizer: Vec<String> = self
            .sanitizer
            .iter()
            .map(|s| {
                format!(
                    "{{\"engine\":{},\"algorithm\":{},\"pattern\":{},\"ok\":{},\"deadlocked\":{},\
                     \"sourced_flits\":{},\"consumed_flits\":{},\"purged_flits\":{},\
                     \"in_flight_flits\":{},\"audited_cycles\":{},\"violations\":[{}]}}",
                    json::string(&s.engine),
                    json::string(&s.algorithm),
                    json::string(&s.pattern),
                    s.ok(),
                    s.deadlocked,
                    s.summary.sourced_flits,
                    s.summary.consumed_flits,
                    s.summary.purged_flits,
                    s.summary.in_flight_flits,
                    s.summary.audited_cycles,
                    s.violations
                        .iter()
                        .map(|v| json::string(v))
                        .collect::<Vec<_>>()
                        .join(","),
                )
            })
            .collect();
        format!(
            "{{\"title\":\"turnlint\",\"quick\":{},\"passed\":{},\"claims\":[{}],\
             \"matrix\":[{}],\"sanitizer\":[{}]}}",
            self.quick,
            self.passed(),
            claims.join(","),
            matrix.join(","),
            sanitizer.join(","),
        )
    }
}

/// Run the full lint: enumeration claims, progress claims, negative
/// controls, the verification matrix, and sanitized simulations.
pub fn run(opts: &LintOptions) -> LintReport {
    let mut claims = Vec::new();

    // Layer 1: design-space enumeration.
    let mesh = Mesh::new_2d(4, 4);
    claims.extend(enumeration::two_turn_claims(&mesh));
    claims.extend(enumeration::exhaustive_2d_claims(&mesh));
    claims.extend(enumeration::hex_claims());
    if !opts.quick {
        claims.extend(enumeration::census_3d_claims(&Mesh::new_cubic(3, 3)));
    }

    // Layer 2a: progress (livelock-freedom) claims for the nonminimal
    // relations, where minimality can't stand in for a potential function.
    claims.extend(progress_claims());
    claims.extend(negative_control_claims());

    // Layer 2b: the algorithm × topology verification matrix.
    let matrix = verification_matrix(opts.quick);

    // Layer 3: invariant-sanitized simulation runs.
    let sanitizer = sanitizer_runs(opts.quick);

    if opts.min_witness {
        claims.push(min_witness_girth_claim(&Mesh::new_2d(4, 4)));
    }
    if opts.inject_bad {
        claims.push(injected_bad_claim(&Mesh::new_2d(4, 4), opts.min_witness));
    }

    LintReport {
        quick: opts.quick,
        claims,
        matrix,
        sanitizer,
    }
}

/// Progress claims: every nonminimal relation the workspace ships must
/// admit a bounded-misroute potential function, fault-masked relations
/// included.
fn progress_claims() -> Vec<Claim> {
    let mut claims = Vec::new();
    let mesh = Mesh::new_2d(5, 5);
    for alg in [
        mesh2d::west_first(RoutingMode::Nonminimal),
        mesh2d::north_last(RoutingMode::Nonminimal),
        mesh2d::negative_first(RoutingMode::Nonminimal),
    ] {
        claims.push(progress_claim(&mesh, &alg, "5x5 mesh"));
    }
    let torus = Torus::new(4, 2);
    claims.push(progress_claim(
        &torus,
        &NegativeFirstTorus::new(2),
        "4-ary 2-cube",
    ));

    // Fault-masked relations: the misroute fallback must stay both
    // deadlock free and livelock free under a mixed fault pattern.
    let mut faults = FaultSet::new(&mesh);
    let center = mesh.node_at_coords(&[2, 2]);
    faults.fail_link(&mesh, center, Direction::EAST);
    faults.fail_link(&mesh, mesh.node_at_coords(&[1, 3]), Direction::NORTH);
    faults.fail_node(&mesh, mesh.node_at_coords(&[3, 1]));
    for alg in [
        mesh2d::west_first(RoutingMode::Minimal),
        mesh2d::negative_first(RoutingMode::Minimal),
    ] {
        let fv = verify_under_faults(&mesh, &alg, &faults);
        let mut c = Claim::check(
            &format!("progress-under-faults-{}", alg.name()),
            "fault-masked relation (misroute fallback included) stays deadlock \
             and livelock free under 2 failed links + 1 failed node",
            "deadlock-free and bounded",
            match (&fv.deadlock_free, &fv.progress) {
                (Check::Failed(_), _) => "dependency cycle",
                (_, Check::Failed(_)) => "unbounded walk",
                _ => "deadlock-free and bounded",
            },
        );
        if let Check::Failed(msg) = &fv.deadlock_free {
            c = c.with_witness(msg.clone());
        } else if let Check::Failed(msg) = &fv.progress {
            c = c.with_witness(msg.clone());
        }
        claims.push(c);
    }
    claims
}

fn progress_claim(topo: &dyn Topology, alg: &dyn RoutingFunction, wher: &str) -> Claim {
    let pr = check_progress(topo, alg);
    let mut c = Claim::check(
        &format!("progress-{}", pr.algorithm),
        &format!(
            "bounded-misroute potential function exists on the {wher} \
             (intrinsic bound: {} unproductive hops)",
            pr.max_misroutes
        ),
        "bounded",
        if pr.bounded.is_ok() {
            "bounded"
        } else {
            "unbounded"
        },
    );
    if let Check::Failed(msg) = &pr.bounded {
        c = c.with_witness(msg.clone());
    }
    c
}

/// Negative controls: the analyzer must *reject* the known-broken
/// relations, with concrete witnesses — otherwise a vacuously green
/// matrix proves nothing.
fn negative_control_claims() -> Vec<Claim> {
    let mut claims = Vec::new();

    // Fully adaptive minimal routing: the paper's motivating hazard.
    let mesh = Mesh::new_2d(4, 4);
    let report = verify(&mesh, &FullyAdaptive::new());
    let mut c = Claim::check(
        "negative-control-fully-adaptive",
        "unrestricted fully adaptive routing must be rejected for deadlock",
        "dependency cycle found",
        match &report.deadlock_free {
            Check::Failed(_) => "dependency cycle found",
            _ => "accepted (BUG: the gate is blind)",
        },
    );
    if let Check::Failed(msg) = &report.deadlock_free {
        c = c.with_witness(msg.clone());
    }
    claims.push(c);

    // A wanderer offering every direction everywhere: must fail progress
    // with a witness walk that revisits a state.
    struct Wanderer;
    impl RoutingFunction for Wanderer {
        fn name(&self) -> &str {
            "wanderer"
        }
        fn route(
            &self,
            topo: &dyn Topology,
            current: turnroute_topology::NodeId,
            _dest: turnroute_topology::NodeId,
            _arrived: Option<Direction>,
        ) -> turnroute_topology::DirSet {
            Direction::all(topo.num_dims())
                .filter(|&d| topo.neighbor(current, d).is_some())
                .collect()
        }
        fn is_minimal(&self) -> bool {
            false
        }
    }
    let pr = check_progress(&Mesh::new_2d(3, 3), &Wanderer);
    let mut c = Claim::check(
        "negative-control-wanderer",
        "an unrestricted wanderer must be rejected for livelock",
        "unbounded walk found",
        match &pr.bounded {
            Check::Failed(_) => "unbounded walk found",
            _ => "accepted (BUG: the progress check is blind)",
        },
    );
    if let Check::Failed(msg) = &pr.bounded {
        c = c.with_witness(msg.clone());
    }
    claims.push(c);

    // An over-restricted turn set: the dead-end finder must catch it.
    let small = Mesh::new_2d(3, 3);
    let dead = find_dead_end(
        &small,
        &TurnSetRouting::new("straight-only", TurnSet::no_turns(2), &small),
    );
    let mut c = Claim::check(
        "negative-control-dead-end",
        "a straight-only relation must be rejected for unreachable turns",
        "dead end found",
        match &dead {
            Some(_) => "dead end found",
            None => "accepted (BUG: the reachability check is blind)",
        },
    );
    if let Some(msg) = dead {
        c = c.with_witness(msg);
    }
    claims.push(c);
    claims
}

/// The `--inject-bad` self-test: a turn set prohibiting a single turn
/// cannot be deadlock free (Theorem 1), and the gate must fail on it
/// with a concrete witness cycle.
fn injected_bad_claim(mesh: &Mesh, min_witness: bool) -> Claim {
    let mut set = TurnSet::all_ninety(2);
    set.prohibit(Turn::new(Direction::NORTH, Direction::WEST));
    let cdg = Cdg::from_turn_set(mesh, &set);
    let mut c = Claim::check(
        "injected-bad-turn-set",
        "deliberately broken set (only north->west prohibited) injected via \
         --inject-bad; this claim is expected to FAIL and carry a witness",
        "acyclic",
        if cdg.is_acyclic() {
            "acyclic"
        } else {
            "cyclic"
        },
    );
    let cycle = if min_witness {
        cdg.find_shortest_cycle()
    } else {
        cdg.find_cycle()
    };
    if let Some(cycle) = cycle {
        c = c.with_witness(witness_cycle(&cdg, &cycle));
    }
    c
}

/// The `--min-witness` girth claim: on the unrestricted mesh CDG the
/// globally shortest dependency cycle is the four channels around one
/// unit square, so the BFS girth search must report exactly 4.
fn min_witness_girth_claim(mesh: &Mesh) -> Claim {
    let cdg = Cdg::from_turn_set(mesh, &TurnSet::all_ninety(2));
    let cycle = cdg.find_shortest_cycle();
    let actual = cycle
        .as_ref()
        .map_or_else(|| "acyclic".to_string(), |c| c.len().to_string());
    let mut c = Claim::check(
        "min-witness-girth",
        "shortest dependency cycle of the unrestricted 4x4 mesh CDG has \
         exactly 4 channels (one unit square)",
        "4",
        &actual,
    );
    if let Some(cycle) = cycle {
        c = c.with_witness(witness_cycle(&cdg, &cycle));
    }
    c
}

const ALL_CHECKS: &[&str] = &[
    "deadlock-free",
    "connected",
    "minimal",
    "progress",
    "channels-valid",
    "turns-consistent",
];

fn matrix_row(
    topology: &str,
    topo: &dyn Topology,
    alg: &dyn RoutingFunction,
    required: &[&str],
) -> MatrixEntry {
    let rep = verify(topo, alg);
    let checks: [(&str, &Check); 6] = [
        ("deadlock-free", &rep.deadlock_free),
        ("connected", &rep.connected),
        ("minimal", &rep.minimal),
        ("progress", &rep.progress),
        ("channels-valid", &rep.channels_valid),
        ("turns-consistent", &rep.turns_consistent),
    ];
    let failures = checks
        .iter()
        .filter(|(name, _)| required.contains(name))
        .filter_map(|(name, check)| match check {
            Check::Failed(msg) => Some(format!("{name}: {msg}")),
            _ => None,
        })
        .collect();
    MatrixEntry {
        topology: topology.to_string(),
        algorithm: alg.name().to_string(),
        required: required.iter().map(|r| r.to_string()).collect(),
        failures,
    }
}

/// Verify every shipped algorithm on its home topology.
fn verification_matrix(quick: bool) -> Vec<MatrixEntry> {
    let mut rows = Vec::new();

    let mesh = Mesh::new_2d(5, 6);
    let minimal: Vec<Box<dyn RoutingFunction>> = vec![
        Box::new(mesh2d::xy()),
        Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        Box::new(mesh2d::north_last(RoutingMode::Minimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
    ];
    for alg in &minimal {
        rows.push(matrix_row("mesh 5x6", &mesh, alg.as_ref(), ALL_CHECKS));
    }
    // Nonminimal modes: minimality is skipped by definition, and the
    // greedy connectivity walk is not meaningful for relations that
    // deliberately overshoot — progress supplies the delivery guarantee.
    let nonminimal_checks = &[
        "deadlock-free",
        "progress",
        "channels-valid",
        "turns-consistent",
    ];
    for alg in [
        mesh2d::west_first(RoutingMode::Nonminimal),
        mesh2d::north_last(RoutingMode::Nonminimal),
        mesh2d::negative_first(RoutingMode::Nonminimal),
    ] {
        rows.push(matrix_row("mesh 5x6", &mesh, &alg, nonminimal_checks));
    }

    let mesh3 = Mesh::new(vec![3, 3, 3]);
    for alg in [
        ndmesh::negative_first(3, RoutingMode::Minimal),
        ndmesh::all_but_one_negative_first(3, RoutingMode::Minimal),
        ndmesh::all_but_one_positive_last(3, RoutingMode::Minimal),
    ] {
        rows.push(matrix_row("mesh 3x3x3", &mesh3, &alg, ALL_CHECKS));
    }

    let dims = if quick { 4 } else { 5 };
    let cube = Hypercube::new(dims);
    let cube_name = format!("{dims}-cube");
    rows.push(matrix_row(
        &cube_name,
        &cube,
        &hypercube::e_cube(dims),
        ALL_CHECKS,
    ));
    rows.push(matrix_row(
        &cube_name,
        &cube,
        &hypercube::p_cube(dims, RoutingMode::Minimal),
        ALL_CHECKS,
    ));

    let torus = Torus::new(4, 2);
    rows.push(matrix_row(
        "4-ary 2-cube",
        &torus,
        &NegativeFirstTorus::new(2),
        ALL_CHECKS,
    ));
    let wrapped = WrapOnFirstHop::new(mesh2d::west_first(RoutingMode::Minimal), &torus);
    rows.push(matrix_row(
        "4-ary 2-cube",
        &torus,
        &wrapped,
        &["deadlock-free", "connected", "channels-valid"],
    ));
    rows
}

fn scaled(cycles: u64, quick: bool) -> u64 {
    if quick {
        cycles / 4
    } else {
        cycles
    }
}

fn sim_sanitizer_run(
    mesh: &Mesh,
    alg: &dyn RoutingFunction,
    pattern: &dyn TrafficPattern,
    pattern_name: &str,
    cfg: SimConfig,
) -> SanitizerRun {
    let obs = InvariantObserver::new(ChannelLayout::for_topology(mesh), cfg.buffer_depth);
    let mut sim = Sim::with_observer(mesh, alg, pattern, cfg, obs);
    let report = sim.run();
    let obs = sim.observer();
    SanitizerRun {
        engine: "sim".to_string(),
        algorithm: alg.name().to_string(),
        pattern: pattern_name.to_string(),
        deadlocked: report.deadlocked,
        summary: obs.summary(),
        violations: obs.violations().to_vec(),
    }
}

/// Full-length sanitized runs of both engines: loaded minimal traffic,
/// nonminimal misrouting, faults with timeouts and retries, and the
/// virtual-channel engine.
fn sanitizer_runs(quick: bool) -> Vec<SanitizerRun> {
    let mut runs = Vec::new();

    let mesh = Mesh::new_2d(6, 6);
    runs.push(sim_sanitizer_run(
        &mesh,
        &mesh2d::west_first(RoutingMode::Minimal),
        &Uniform::new(),
        "uniform",
        SimConfig::builder()
            .injection_rate(0.3)
            .warmup_cycles(scaled(400, quick))
            .measure_cycles(scaled(2_000, quick))
            .drain_cycles(scaled(1_200, quick))
            .seed(11)
            .build(),
    ));

    let mesh5 = Mesh::new_2d(5, 5);
    runs.push(sim_sanitizer_run(
        &mesh5,
        &mesh2d::north_last(RoutingMode::Nonminimal),
        &MeshTranspose::new(),
        "transpose",
        SimConfig::builder()
            .injection_rate(0.25)
            .warmup_cycles(scaled(200, quick))
            .measure_cycles(scaled(1_200, quick))
            .drain_cycles(scaled(1_200, quick))
            .misroute_budget(4)
            .seed(23)
            .build(),
    ));

    let center = mesh5.node_at_coords(&[2, 2]);
    let plan = FaultPlan::new()
        .transient_link(center, Direction::EAST, 100, scaled(400, quick))
        .transient_node(center, scaled(600, quick), scaled(300, quick));
    runs.push(sim_sanitizer_run(
        &mesh5,
        &mesh2d::negative_first(RoutingMode::Minimal),
        &Uniform::new(),
        "uniform+faults",
        SimConfig::builder()
            .injection_rate(0.2)
            .warmup_cycles(0)
            .measure_cycles(scaled(1_600, quick))
            .drain_cycles(scaled(1_000, quick))
            .packet_timeout(150)
            .max_retries(1)
            .deadlock_threshold(5_000)
            .fault_plan(plan)
            .seed(5)
            .build(),
    ));

    // The virtual-channel engine, same shadow model (VC buffers are
    // depth 1 regardless of the configured network buffer depth).
    let routing = DoubleYAdaptive::new();
    let pattern = MeshTranspose::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.3)
        .warmup_cycles(scaled(200, quick))
        .measure_cycles(scaled(1_200, quick))
        .drain_cycles(scaled(1_200, quick))
        .seed(7)
        .build();
    let obs = InvariantObserver::new(ChannelLayout::new(mesh.num_nodes(), 4), 1);
    let mut sim = VcSim::with_observer(&mesh, &routing, &pattern, cfg, obs);
    let report = sim.run();
    let obs = sim.observer();
    runs.push(SanitizerRun {
        engine: "vc".to_string(),
        algorithm: "double-y-adaptive".to_string(),
        pattern: "transpose".to_string(),
        deadlocked: report.deadlocked,
        summary: obs.summary(),
        violations: obs.violations().to_vec(),
    });
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_lint_passes_end_to_end() {
        let report = run(&LintOptions {
            quick: true,
            ..LintOptions::default()
        });
        assert!(report.passed(), "\n{}", report.render());
        assert!(json::validate(&report.to_json()), "{}", report.to_json());
        // Negative controls must be present and green.
        assert!(report
            .claims
            .iter()
            .any(|c| c.name == "negative-control-fully-adaptive" && c.passed));
    }

    #[test]
    fn injected_bad_set_fails_with_a_witness_cycle() {
        let report = run(&LintOptions {
            quick: true,
            inject_bad: true,
            ..LintOptions::default()
        });
        assert!(!report.passed());
        let bad = report
            .claims
            .iter()
            .find(|c| c.name == "injected-bad-turn-set")
            .expect("the injected claim must be present");
        assert!(!bad.passed);
        let w = bad.witness.as_deref().expect("must carry a witness");
        assert!(w.contains("channel cycle"), "{w}");
        assert!(w.contains("turns:"), "{w}");
    }

    #[test]
    fn min_witness_produces_minimal_cycles_and_girth_claim() {
        // Both the injected-bad witness and the girth claim come from the
        // BFS girth search, so both cycles must be girth-length: 4
        // channels each. (cdg.rs proves minimality of the search itself
        // by exhaustive bounded-depth enumeration.)
        let girth = min_witness_girth_claim(&Mesh::new_2d(4, 4));
        assert!(girth.passed, "{}", girth.actual);
        let gw = girth.witness.as_deref().expect("girth claim witness");
        assert_eq!(gw.matches(" -> ").count(), 4, "{gw}");

        let bad = injected_bad_claim(&Mesh::new_2d(4, 4), true);
        assert!(!bad.passed);
        let bw = bad.witness.as_deref().expect("injected-bad witness");
        // "a -> b -> c -> d -> back to a" has exactly 4 arrows for a
        // 4-channel cycle; the DFS default finds longer ones.
        assert_eq!(bw.matches(" -> ").count(), 4, "{bw}");
        let dfs = injected_bad_claim(&Mesh::new_2d(4, 4), false);
        let dw = dfs.witness.as_deref().expect("DFS witness");
        assert!(dw.matches(" -> ").count() >= 4, "{dw}");
    }
}
