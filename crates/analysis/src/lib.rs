//! `turnlint` — static analysis of the turn-model design space, progress
//! proofs, and simulator invariant sanitization.
//!
//! The rest of the workspace *implements* the turn model; this crate
//! *audits* it, exhaustively and mechanically:
//!
//! * [`enumeration`] — every census the paper states a number for, re-run
//!   from scratch: the 16-way two-turn census and its three symmetry
//!   classes, the exhaustive 256-subset sweep behind Theorem 1's
//!   quarter-of-the-turns bound, the 4096-candidate 3D generalization,
//!   and the hexagonal triangle cycles of Section 7. Every count is a
//!   machine-checkable [`Claim`]; every failure carries a witness cycle.
//! * [`routing`] — [`TurnSetRouting`] turns any turn set into the
//!   maximally adaptive minimal routing function it permits, so static
//!   CDG verdicts can be cross-validated against live simulations, and
//!   [`find_dead_end`] proves the relation never strands a packet.
//! * [`lint`] — the driver behind the `turnlint` binary: enumeration
//!   claims, the algorithm × topology verification matrix (including the
//!   bounded-misroute progress check and fault-masked verification),
//!   negative controls, and full simulation runs of both wormhole
//!   engines under the [`turnroute_sim::InvariantObserver`] shadow
//!   model. One JSON artifact, one exit code: the CI gate.
//! * [`heal`] — `turnheal`, certificate-gated online reconfiguration:
//!   a healing driver that, on every live fault transition, pauses
//!   arbitration around the changed region, incrementally re-proves the
//!   fault-masked channel graph (numbering repair with a full-prove
//!   fallback), and swaps routing tables only once the independent
//!   checker has validated the epoch's certificate — quarantining
//!   witness channels when the degraded relation turns cyclic.
//! * [`mc`] — `turncheck`, explicit-state bounded model checking that
//!   drives the *production engines* (not a re-model) through every
//!   reachable global state of small configurations: canonical state
//!   encoding with symmetry reduction, exhaustive certification of every
//!   census-safe turn set, refinement of every census-unsafe deadlock
//!   onto its CDG proof cycle, replayable counterexample scenarios, and
//!   a misroute-bound progress check under full arbitration
//!   nondeterminism.
//! * [`certificate`], [`extract`], [`prove`], [`check`] — `turnprove`,
//!   the generalized channel-graph verifier: every configuration
//!   (topology × routing × virtual channels × faults) is lowered to an
//!   explicit [`certificate::GraphSpec`], proven deadlock free by a
//!   total channel numbering (or refuted by a minimal witness cycle),
//!   certified connected path by path, and the whole proof object is
//!   re-validated by the deliberately tiny independent checker before
//!   CI believes a word of it.
//! * [`synth`] — `turnsynth`, the constructive inverse of `turnprove`:
//!   every *cyclic* verdict in the matrix is turned into a synthesized
//!   escape/adaptive virtual-channel assignment (the mechanical
//!   generalization of the hand-coded double-y split), lowered back to a
//!   [`certificate::GraphSpec`], re-proven acyclic, validated by the
//!   same independent checker, and cross-checked by seeded saturating
//!   runs where the unsplit relation deadlocks and the synthesized one
//!   delivers every packet.
//!
//! # Example
//!
//! ```
//! use turnroute_analysis::lint::{run, LintOptions};
//!
//! let report = run(&LintOptions { quick: true, ..LintOptions::default() });
//! assert!(report.passed(), "{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod certificate;
pub mod check;
pub mod claim;
pub mod enumeration;
pub mod extract;
pub mod heal;
pub mod lint;
pub mod mc;
pub mod prove;
pub mod routing;
pub mod synth;

pub use certificate::{Certificate, ChannelVertex, GraphSpec, PathCert, Verdict};
pub use claim::{witness_cycle, Claim};
pub use heal::{run_healing, run_healing_sim, EpochRecord, HealOptions, HealReport};
pub use lint::{LintOptions, LintReport};
pub use mc::{McEntry, McOptions, McReport};
pub use prove::{ProveOptions, ProveReport};
pub use routing::{find_dead_end, TurnSetRouting};
pub use synth::{SynthEntry, SynthOptions, SynthReport, SynthResult};
