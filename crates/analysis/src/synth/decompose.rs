//! Feedback-edge decomposition of a cyclic dependency relation.
//!
//! The synthesizer's first step: find an inclusion-minimal set of
//! dependency edges whose removal leaves the relation acyclic. The
//! surviving edges become the adaptive class's dependency budget; every
//! cut edge marks a routing move the adaptive class must surrender to
//! the escape class.

use turnroute_model::numbering::numbering_from_edges;

/// Indices into `deps` of an inclusion-minimal feedback edge set: the
/// remaining edges are acyclic, and re-adding any single cut edge
/// reintroduces a cycle.
///
/// Deterministic: a depth-first sweep in vertex/edge id order collects
/// the back edges as candidates, then a greedy pass re-adds every
/// candidate the acyclic remainder can absorb.
pub fn feedback_edges(num_channels: usize, deps: &[(u32, u32)]) -> Vec<usize> {
    // Adjacency carrying original edge indices.
    let mut adj: Vec<Vec<(u32, usize)>> = vec![Vec::new(); num_channels];
    for (i, &(a, b)) in deps.iter().enumerate() {
        adj[a as usize].push((b, i));
    }

    // Iterative DFS; an edge into a GRAY (on-stack) vertex is a back edge.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; num_channels];
    let mut candidates = Vec::new();
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..num_channels {
        if color[start] != WHITE {
            continue;
        }
        color[start] = GRAY;
        stack.push((start, 0));
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < adj[v].len() {
                let (w, edge) = adj[v][*next];
                *next += 1;
                match color[w as usize] {
                    WHITE => {
                        color[w as usize] = GRAY;
                        stack.push((w as usize, 0));
                    }
                    GRAY => candidates.push(edge),
                    _ => {}
                }
            } else {
                color[v] = BLACK;
                stack.pop();
            }
        }
    }

    // Greedy minimization: keep the non-candidates, then re-add every
    // candidate (in id order) that leaves the kept set acyclic.
    let is_candidate = {
        let mut mask = vec![false; deps.len()];
        for &c in &candidates {
            mask[c] = true;
        }
        mask
    };
    let mut kept: Vec<(u32, u32)> = deps
        .iter()
        .enumerate()
        .filter(|&(i, _)| !is_candidate[i])
        .map(|(_, &e)| e)
        .collect();
    debug_assert!(numbering_from_edges(num_channels, &kept).is_some());
    let mut feedback = Vec::new();
    candidates.sort_unstable();
    candidates.dedup();
    for c in candidates {
        kept.push(deps[c]);
        if numbering_from_edges(num_channels, &kept).is_none() {
            kept.pop();
            feedback.push(c);
        }
    }
    feedback.sort_unstable();
    feedback
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_input_cuts_nothing() {
        let deps = [(0, 1), (1, 2), (0, 2)];
        assert!(feedback_edges(3, &deps).is_empty());
    }

    #[test]
    fn simple_cycle_cuts_exactly_one_edge() {
        let deps = [(0, 1), (1, 2), (2, 0)];
        let f = feedback_edges(3, &deps);
        assert_eq!(f.len(), 1);
        let kept: Vec<(u32, u32)> = deps
            .iter()
            .enumerate()
            .filter(|&(i, _)| !f.contains(&i))
            .map(|(_, &e)| e)
            .collect();
        assert!(numbering_from_edges(3, &kept).is_some());
    }

    #[test]
    fn cut_set_is_inclusion_minimal() {
        // Two overlapping cycles sharing the edge (1, 2).
        let deps = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 1)];
        let f = feedback_edges(4, &deps);
        let kept = |skip: Option<usize>| -> Vec<(u32, u32)> {
            deps.iter()
                .enumerate()
                .filter(|&(i, _)| !f.contains(&i) || Some(i) == skip)
                .map(|(_, &e)| e)
                .collect()
        };
        assert!(numbering_from_edges(4, &kept(None)).is_some());
        for &i in &f {
            assert!(
                numbering_from_edges(4, &kept(Some(i))).is_none(),
                "edge {i} could be re-added: the cut is not minimal"
            );
        }
    }
}
