//! `turnsynth`: certificate-driven virtual-channel class synthesis.
//!
//! The prover ([`crate::prove`]) turns acyclic channel graphs into
//! checked numbering certificates and cyclic ones into witness cycles.
//! This module inverts the refutations: given any
//! [`GraphSpec`](crate::certificate::GraphSpec) whose
//! verdict is `Cyclic`, it synthesizes an **escape/adaptive
//! virtual-channel assignment** — the mechanical generalization of what
//! the double-y configuration hand-codes for the 2D mesh — and lowers it
//! back to a `GraphSpec` the *existing* prover can certify:
//!
//! 1. [`decompose::feedback_edges`] cuts an inclusion-minimal feedback
//!    set out of the input dependency relation;
//! 2. [`lower::synthesize`] splits every channel into an adaptive class
//!    (the input relation minus the cut moves) and a minimal escape
//!    class (an up*/down* relation over the induced node graph, pruned
//!    to the channels some destination actually uses), with escape
//!    entries from every injection point and every live adaptive state;
//! 3. the driver ([`report::run`]) re-runs [`crate::prove::prove`] on
//!    every synthesized spec and records only what the independent
//!    checker ([`crate::check`]) accepts — the synthesizer itself is
//!    **not** in the trusted computing base (`DESIGN.md` §14).
//!
//! Two classes are minimal: a single class is the input itself, which is
//! cyclic by assumption. The feedback set is inclusion-minimal (re-adding
//! any cut edge re-creates a cycle) and the escape class is pruned to the
//! channels reachability requires, so the synthesized assignment is
//! locally irreducible rather than globally optimal — computing a
//! minimum feedback arc set is NP-hard.

pub mod decompose;
pub mod lower;
pub mod report;

pub use decompose::feedback_edges;
pub use lower::{escape_dead_end, synthesize, EscapeChannel, SynthResult};
pub use report::{run, SynthEntry, SynthOptions, SynthReport};
