//! Escape-class construction and the lowering to a certified `GraphSpec`.
//!
//! Given a cyclic input spec, the synthesizer splits every physical
//! channel into two virtual channels:
//!
//! * the **adaptive** class keeps the input's routing relation minus the
//!   moves riding a cut feedback edge (see
//!   [`super::decompose::feedback_edges`]) — its dependency relation is a
//!   subgraph of the acyclic remainder;
//! * the **escape** class carries an up*/down* relation over the node
//!   graph induced by the input's channels (the same discipline as
//!   `extract::from_netlist`): a breadth-first spanning tree from node 0
//!   levels the nodes, `up` moves strictly decrease `(level, id)`, down
//!   moves strictly increase it, reversals and down→up transitions are
//!   prohibited, and per-destination good-reachability prunes dead ends.
//!
//! Every injection state and every live adaptive state additionally
//! offers the escape entry moves for its node, so a packet blocked in
//! the adaptive class can always drain: adaptive→adaptive edges live in
//! the acyclic remainder, adaptive→escape edges point one way into the
//! escape layer, and escape→escape edges follow the acyclic up*/down*
//! order — the union is acyclic by layered composition, which the
//! *prover* (not this module) re-establishes on every output.

use crate::certificate::{ChannelVertex, GraphSpec};
use std::collections::VecDeque;
use turnroute_model::numbering::numbering_from_edges;

use super::decompose::feedback_edges;

/// One synthesized escape channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscapeChannel {
    /// Channel id in the synthesized spec.
    pub id: u32,
    /// Router the channel leaves.
    pub src: u32,
    /// Router the channel enters.
    pub dst: u32,
    /// Whether the move is `up` (toward the spanning-tree root order).
    pub up: bool,
}

/// The synthesizer's output: a lowered spec plus the decomposition that
/// produced it. The spec carries **no certificate** — the caller must run
/// the prover and the independent checker on it (see `DESIGN.md` §14 on
/// the trust boundary).
#[derive(Debug, Clone)]
pub struct SynthResult {
    /// The synthesized escape/adaptive channel graph. Channels
    /// `0..num_adaptive` are the adaptive class (same ids as the input's
    /// channels); the escape class follows.
    pub spec: GraphSpec,
    /// Input channel count == adaptive-class size.
    pub num_adaptive: usize,
    /// The escape class, in synthesized channel-id order.
    pub escape: Vec<EscapeChannel>,
    /// Indices into the *input* spec's `deps` that were cut from the
    /// adaptive relation (an inclusion-minimal feedback set).
    pub feedback: Vec<usize>,
    /// Directed physical links of the induced node graph.
    pub phys_links: usize,
}

impl SynthResult {
    /// Virtual-channel classes per physical channel (adaptive + escape).
    pub fn num_classes(&self) -> usize {
        2
    }
}

/// Synthesize an escape/adaptive virtual-channel assignment for a cyclic
/// input spec.
///
/// Errors when the input is already acyclic (nothing to synthesize),
/// when its channels induce a disconnected node graph, or when the
/// escape relation cannot reach some destination (a malformed input —
/// up*/down* over a connected bidirectional link graph always can).
pub fn synthesize(input: &GraphSpec) -> Result<SynthResult, String> {
    let n = input.num_nodes as usize;
    let k = input.channels.len();
    if numbering_from_edges(k, &input.deps).is_some() {
        return Err(format!(
            "{}: input dependency graph is already acyclic; nothing to synthesize",
            input.name
        ));
    }

    // ---- feedback decomposition over the input relation -------------
    let feedback = feedback_edges(k, &input.deps);
    let cut: std::collections::HashSet<(u32, u32)> =
        feedback.iter().map(|&i| input.deps[i]).collect();

    // ---- induced node graph + escape channel set --------------------
    // One escape channel per *directed link*: parallel input channels
    // over the same (src, dst) share one escape lane.
    let mut links: Vec<(u32, u32)> = input.channels.iter().map(|c| (c.src, c.dst)).collect();
    links.sort_unstable();
    links.dedup();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in &links {
        adj[a as usize].push(b);
    }
    let mut level = vec![u32::MAX; n];
    level[0] = 0;
    let mut queue = VecDeque::from([0u32]);
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v as usize] {
            if level[w as usize] == u32::MAX {
                level[w as usize] = level[v as usize] + 1;
                queue.push_back(w);
            }
        }
    }
    if level.contains(&u32::MAX) {
        return Err(format!(
            "{}: channel graph does not connect every node from node 0",
            input.name
        ));
    }
    let up = |c: (u32, u32)| (level[c.1 as usize], c.1) < (level[c.0 as usize], c.0);

    // Escape transitions: continue without reversing, never down→up.
    let e = links.len();
    let mut esucc: Vec<Vec<u32>> = vec![Vec::new(); e];
    for (i, &c1) in links.iter().enumerate() {
        for (j, &c2) in links.iter().enumerate() {
            let continues = c2.0 == c1.1 && c2.1 != c1.0;
            let down_to_up = !up(c1) && up(c2);
            if continues && !down_to_up {
                esucc[i].push(j as u32);
            }
        }
    }
    let mut epred: Vec<Vec<u32>> = vec![Vec::new(); e];
    for (i, succs) in esucc.iter().enumerate() {
        for &j in succs {
            epred[j as usize].push(i as u32);
        }
    }

    // Per-destination good-reachability over the escape relation.
    let mut good = vec![vec![false; e]; n];
    for (dest, good_d) in good.iter_mut().enumerate() {
        let mut queue: VecDeque<usize> = (0..e)
            .filter(|&c| links[c].1 == dest as u32)
            .inspect(|&c| good_d[c] = true)
            .collect();
        while let Some(c) = queue.pop_front() {
            for &p in &epred[c] {
                if !good_d[p as usize] {
                    good_d[p as usize] = true;
                    queue.push_back(p as usize);
                }
            }
        }
        // Delivery guarantee: every node must have a good escape start.
        for v in 0..n {
            if v == dest {
                continue;
            }
            if !(0..e).any(|c| links[c].0 == v as u32 && good_d[c]) {
                return Err(format!(
                    "{}: escape relation cannot reach n{dest} from n{v}",
                    input.name
                ));
            }
        }
    }

    // Escape channels actually offered somewhere: good for some dest.
    let used: Vec<usize> = (0..e)
        .filter(|&c| good.iter().any(|good_d| good_d[c]))
        .collect();
    let mut escape_id = vec![u32::MAX; e];
    let mut escape = Vec::with_capacity(used.len());
    for (slot, &c) in used.iter().enumerate() {
        let id = (k + slot) as u32;
        escape_id[c] = id;
        escape.push(EscapeChannel {
            id,
            src: links[c].0,
            dst: links[c].1,
            up: up(links[c]),
        });
    }

    // ---- lowered channel list ---------------------------------------
    let mut channels: Vec<ChannelVertex> = input
        .channels
        .iter()
        .map(|c| ChannelVertex {
            src: c.src,
            dst: c.dst,
            label: format!("{} [adaptive]", c.label),
        })
        .collect();
    for esc in &escape {
        channels.push(ChannelVertex {
            src: esc.src,
            dst: esc.dst,
            label: format!(
                "e{} n{} -> n{} ({}) [escape]",
                esc.id,
                esc.src,
                esc.dst,
                if esc.up { "up" } else { "down" }
            ),
        });
    }

    // ---- lowered routing relation -----------------------------------
    let num_states = n + channels.len();
    let mut routes = Vec::with_capacity(n);
    let mut dep_set = std::collections::BTreeSet::new();
    for (dest, good_d) in good.iter().enumerate() {
        // Escape entry moves per node, in escape-id order.
        let start_at = |v: u32| -> Vec<u32> {
            (0..e)
                .filter(|&c| links[c].0 == v && good_d[c])
                .map(|c| escape_id[c])
                .collect()
        };
        let mut table = vec![Vec::new(); num_states];
        for (v, slot) in table.iter_mut().enumerate().take(n) {
            if v == dest {
                continue;
            }
            let mut moves = input.routes[dest][v].clone();
            moves.extend(start_at(v as u32));
            *slot = moves;
        }
        for (c, vert) in input.channels.iter().enumerate() {
            if vert.dst == dest as u32 {
                continue;
            }
            let orig = &input.routes[dest][n + c];
            if orig.is_empty() {
                continue; // unreachable adaptive state stays unreachable
            }
            let mut moves: Vec<u32> = orig
                .iter()
                .copied()
                .filter(|&m| !cut.contains(&(c as u32, m)))
                .collect();
            moves.extend(start_at(vert.dst));
            for &m in &moves {
                dep_set.insert((c as u32, m));
            }
            table[n + c] = moves;
        }
        for (slot, &c) in used.iter().enumerate() {
            if links[c].1 == dest as u32 || !good_d[c] {
                continue;
            }
            let moves: Vec<u32> = esucc[c]
                .iter()
                .copied()
                .filter(|&next| good_d[next as usize])
                .map(|next| escape_id[next as usize])
                .collect();
            let id = (k + slot) as u32;
            for &m in &moves {
                dep_set.insert((id, m));
            }
            table[n + k + slot] = moves;
        }
        routes.push(table);
    }

    let spec = GraphSpec {
        name: format!("{}/synth", input.name),
        num_nodes: input.num_nodes,
        channels,
        deps: dep_set.into_iter().collect(),
        routes,
    };
    Ok(SynthResult {
        spec,
        num_adaptive: k,
        escape,
        feedback,
        phys_links: e,
    })
}

/// Adversarial dead-end check of the escape class alone: for every
/// destination, every escape channel the relation can put a packet in
/// must either enter the destination or offer a further escape move —
/// the synthesized analogue of `routing::find_dead_end`, run
/// independently of the construction's own reachability pruning.
pub fn escape_dead_end(result: &SynthResult) -> Option<String> {
    let spec = &result.spec;
    let n = spec.num_nodes as usize;
    let k = result.num_adaptive;
    let is_escape = |c: u32| (c as usize) >= k;
    for dest in 0..n {
        // Every escape channel offered anywhere for this destination.
        let mut offered: Vec<u32> = Vec::new();
        for table in &spec.routes[dest] {
            for &m in table {
                if is_escape(m) && !offered.contains(&m) {
                    offered.push(m);
                }
            }
        }
        // Injection must always have an escape start.
        for v in 0..n {
            if v == dest {
                continue;
            }
            if !spec.routes[dest][v].iter().any(|&m| is_escape(m)) {
                return Some(format!("n{v} has no escape start toward n{dest}"));
            }
        }
        for c in offered {
            let vert = &spec.channels[c as usize];
            if vert.dst == dest as u32 {
                continue;
            }
            let moves = &spec.routes[dest][n + c as usize];
            if !moves.iter().any(|&m| is_escape(m)) {
                return Some(format!("escape dead end toward n{dest}: {}", vert.label));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract;
    use turnroute_model::TurnSet;
    use turnroute_topology::Mesh;

    #[test]
    fn unrestricted_mesh_synthesizes_a_checked_split() {
        let mesh = Mesh::new_2d(4, 4);
        let input = extract::from_turn_set("m", &mesh, &TurnSet::all_ninety(2));
        let result = synthesize(&input).expect("cyclic input synthesizes");
        assert_eq!(result.num_adaptive, input.channels.len());
        assert!(!result.feedback.is_empty(), "something must be cut");
        let cert = crate::prove::prove(&result.spec);
        assert!(cert.verdict.is_acyclic());
        crate::check::check(&result.spec, &cert).expect("checker accepts");
        assert!(cert.unreachable.is_empty());
        assert!(escape_dead_end(&result).is_none());
    }

    #[test]
    fn acyclic_input_is_rejected() {
        let input = extract::from_netlist("tree", 4, &[(0, 1), (0, 2), (2, 3)]);
        let err = synthesize(&input).unwrap_err();
        assert!(err.contains("already acyclic"), "{err}");
    }

    #[test]
    fn adaptive_class_keeps_the_input_moves_minus_the_cut() {
        let mesh = Mesh::new_2d(3, 3);
        let input = extract::from_turn_set("m3", &mesh, &TurnSet::all_ninety(2));
        let result = synthesize(&input).expect("synthesizes");
        let cut: std::collections::HashSet<(u32, u32)> =
            result.feedback.iter().map(|&i| input.deps[i]).collect();
        let n = input.num_nodes as usize;
        for dest in 0..n {
            for (c, vert) in input.channels.iter().enumerate() {
                if vert.dst == dest as u32 || input.routes[dest][n + c].is_empty() {
                    continue;
                }
                let synth_moves = &result.spec.routes[dest][n + c];
                for &m in &input.routes[dest][n + c] {
                    let expect = !cut.contains(&(c as u32, m));
                    assert_eq!(
                        synth_moves.contains(&m),
                        expect,
                        "dest {dest} channel {c} move {m}"
                    );
                }
            }
        }
    }
}
