//! The `turnsynth` driver: synthesize a certified escape/adaptive
//! assignment for every cyclic configuration the matrix can produce.
//!
//! For each input the driver proves the *input* is cyclic (recording the
//! witness length), synthesizes the split, re-runs the full prover on
//! the synthesized spec, and records only what the independent checker
//! accepts. Seeded saturating runs in the vc crate's engines confront
//! every topology family with live behavior: the unsplit relation must
//! deadlock, the synthesized one must deliver every packet.

use crate::certificate::{GraphSpec, Verdict};
use crate::extract;
use crate::prove::prove;
use crate::synth::lower::{escape_dead_end, synthesize, SynthResult};
use turnroute_model::{Cdg, Turn, TurnSet};
use turnroute_rng::{Rng, SeedableRng, StdRng};
use turnroute_sim::obs::json;
use turnroute_sim::SimConfig;
use turnroute_topology::{Direction, HexMesh, Mesh, NodeId, Sign, Topology, Torus};
use turnroute_traffic::Uniform;
use turnroute_vc::{SpecSim, SpecView, TableVcRouting, VcClass, VcSim, VirtualDirection};

/// Options controlling a synth run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynthOptions {
    /// Shrink the simulator cross-checks (CI-friendly).
    pub quick: bool,
    /// Tamper one synthesized assignment so a cyclic dependency hides
    /// inside the escape class while the certificate still claims
    /// acyclicity; the independent checker — not the synthesizer — must
    /// reject it and fail the run (self-test of the gate).
    pub inject_bad: bool,
}

/// One synthesized configuration.
#[derive(Debug, Clone)]
pub struct SynthEntry {
    /// Input configuration name.
    pub config: String,
    /// Input extraction kind: `turn-set`, `vc`, or `netlist`.
    pub kind: String,
    /// Input channel count.
    pub input_channels: usize,
    /// Input dependency-edge count.
    pub input_deps: usize,
    /// Length of the input's proven witness cycle.
    pub witness_len: usize,
    /// Virtual-channel classes in the synthesized assignment.
    pub classes: usize,
    /// Adaptive-class size (== input channel count).
    pub adaptive_channels: usize,
    /// Escape-class size after reachability pruning.
    pub escape_channels: usize,
    /// Feedback edges cut from the adaptive relation.
    pub feedback_cut: usize,
    /// Synthesized channel count.
    pub synth_channels: usize,
    /// Synthesized dependency-edge count.
    pub synth_deps: usize,
    /// The re-proven verdict on the synthesized spec.
    pub acyclic: bool,
    /// Whether the independent checker accepted the certificate.
    pub checker_ok: bool,
    /// The checker's rejection reason, when it rejected.
    pub checker_err: Option<String>,
    /// Ordered pairs with a certified path in the synthesized spec.
    pub certified_pairs: usize,
    /// Ordered pairs the prover claims unreachable (must be zero — the
    /// escape class restores full connectivity).
    pub unreachable_pairs: usize,
    /// Whether the adversarial escape dead-end check passed.
    pub escape_ok: bool,
}

impl SynthEntry {
    /// A synthesized assignment counts only when the independent checker
    /// certified it acyclic, fully connected, and escape-dead-end free.
    pub fn ok(&self) -> bool {
        self.acyclic && self.checker_ok && self.unreachable_pairs == 0 && self.escape_ok
    }
}

/// One live-engine confrontation of an unsplit/synthesized pair.
#[derive(Debug, Clone)]
pub struct SynthCrossCheck {
    /// Configuration simulated.
    pub config: String,
    /// Engine used: `specsim` (channel-graph resource model) or `vcsim`
    /// (wormhole virtual-channel engine).
    pub engine: String,
    /// Whether the *unsplit* relation deadlocked under the seeded
    /// saturating run (it must).
    pub unsplit_deadlocked: bool,
    /// Packets injected into the synthesized relation.
    pub synth_injected: u64,
    /// Packets the synthesized relation delivered (must equal injected).
    pub synth_delivered: u64,
    /// Whether the synthesized relation deadlocked (it must not).
    pub synth_deadlocked: bool,
}

impl SynthCrossCheck {
    /// The acceptance shape: deadlock without the split, 100% delivery
    /// with it.
    pub fn ok(&self) -> bool {
        self.unsplit_deadlocked
            && !self.synth_deadlocked
            && self.synth_injected > 0
            && self.synth_delivered == self.synth_injected
    }
}

/// The complete outcome of a synth run.
#[derive(Debug, Clone)]
pub struct SynthReport {
    /// Whether the run used the shortened quick profile.
    pub quick: bool,
    /// Every synthesized configuration, in matrix order.
    pub entries: Vec<SynthEntry>,
    /// The live-engine cross-validations.
    pub cross_checks: Vec<SynthCrossCheck>,
}

impl SynthReport {
    /// The overall CI verdict.
    pub fn passed(&self) -> bool {
        !self.entries.is_empty()
            && self.entries.iter().all(SynthEntry::ok)
            && self.cross_checks.iter().all(SynthCrossCheck::ok)
    }

    /// Human-readable diagnostics.
    pub fn render(&self) -> String {
        let mut out = String::from("== turnsynth: synthesized VC assignments ==\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{} {:<52} [{}] {} ch / {} deps (witness {}) -> {} classes, \
                 {} adaptive + {} escape, {} cut, {} deps, verdict {}, {} paths / {} unreachable\n",
                if e.ok() { "ok  " } else { "FAIL" },
                e.config,
                e.kind,
                e.input_channels,
                e.input_deps,
                e.witness_len,
                e.classes,
                e.adaptive_channels,
                e.escape_channels,
                e.feedback_cut,
                e.synth_deps,
                if e.acyclic {
                    "acyclic (numbering checked)"
                } else {
                    "CYCLIC"
                },
                e.certified_pairs,
                e.unreachable_pairs,
            ));
            if let Some(err) = &e.checker_err {
                out.push_str(&format!("       checker rejected: {err} (self-test)\n"));
            }
            if !e.escape_ok {
                out.push_str("       escape relation has a dead end\n");
            }
        }
        out.push_str("\n== turnsynth: simulator cross-validation ==\n");
        for x in &self.cross_checks {
            out.push_str(&format!(
                "{} {:<52} [{}] unsplit {}, synth {}/{} delivered{}\n",
                if x.ok() { "ok  " } else { "FAIL" },
                x.config,
                x.engine,
                if x.unsplit_deadlocked {
                    "deadlocked"
                } else {
                    "DID NOT deadlock"
                },
                x.synth_delivered,
                x.synth_injected,
                if x.synth_deadlocked {
                    ", DEADLOCKED"
                } else {
                    ""
                },
            ));
        }
        out.push_str(&format!(
            "\nturnsynth: {}\n",
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// Machine-readable form, stable field order, for
    /// `results/turnsynth.json`.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                format!(
                    "{{\"config\":{},\"kind\":{},\"input_channels\":{},\"input_deps\":{},\
                     \"witness_len\":{},\"classes\":{},\"adaptive_channels\":{},\
                     \"escape_channels\":{},\"feedback_cut\":{},\"synth_channels\":{},\
                     \"synth_deps\":{},\"acyclic\":{},\"checker_ok\":{},\
                     \"certified_pairs\":{},\"unreachable_pairs\":{},\"escape_ok\":{},\
                     \"ok\":{}{}}}",
                    json::string(&e.config),
                    json::string(&e.kind),
                    e.input_channels,
                    e.input_deps,
                    e.witness_len,
                    e.classes,
                    e.adaptive_channels,
                    e.escape_channels,
                    e.feedback_cut,
                    e.synth_channels,
                    e.synth_deps,
                    e.acyclic,
                    e.checker_ok,
                    e.certified_pairs,
                    e.unreachable_pairs,
                    e.escape_ok,
                    e.ok(),
                    match &e.checker_err {
                        Some(err) => format!(",\"checker_err\":{}", json::string(err)),
                        None => String::new(),
                    },
                )
            })
            .collect();
        let xval: Vec<String> = self
            .cross_checks
            .iter()
            .map(|x| {
                format!(
                    "{{\"config\":{},\"engine\":{},\"unsplit_deadlocked\":{},\
                     \"synth_injected\":{},\"synth_delivered\":{},\
                     \"synth_deadlocked\":{},\"ok\":{}}}",
                    json::string(&x.config),
                    json::string(&x.engine),
                    x.unsplit_deadlocked,
                    x.synth_injected,
                    x.synth_delivered,
                    x.synth_deadlocked,
                    x.ok(),
                )
            })
            .collect();
        format!(
            "{{\"title\":\"turnsynth\",\"quick\":{},\"passed\":{},\
             \"entries\":[{}],\"cross_checks\":[{}]}}",
            self.quick,
            self.passed(),
            entries.join(","),
            xval.join(","),
        )
    }
}

/// The 3-stage butterfly netlist: three columns of four switches; column
/// `s` row `r` links straight to `(s+1, r)` and across to
/// `(s+1, r XOR 2^s)`. Unrestricted routing over it is cyclic (the
/// straight/cross link pairs close 4-cycles).
pub fn butterfly3_links() -> Vec<(u32, u32)> {
    let node = |s: u32, r: u32| s * 4 + r;
    let mut links = Vec::new();
    for s in 0..2u32 {
        for r in 0..4u32 {
            links.push((node(s, r), node(s + 1, r)));
            let cross = r ^ (1 << s);
            links.push((node(s, r), node(s + 1, cross)));
        }
    }
    links
}

/// The 6-node irregular netlist of the turnprove matrix (two bridged
/// triangles).
pub fn netlist6_links() -> [(u32, u32); 8] {
    [
        (0, 1),
        (0, 2),
        (1, 2),
        (1, 3),
        (2, 4),
        (3, 4),
        (3, 5),
        (4, 5),
    ]
}

/// Synthesize + prove + check + dead-end-check one cyclic input.
fn entry(kind: &str, input: &GraphSpec) -> (SynthEntry, Option<SynthResult>) {
    let witness_len = match prove(input).verdict {
        Verdict::Cyclic { cycle } => cycle.len(),
        Verdict::Acyclic { .. } => 0,
    };
    let base = SynthEntry {
        config: input.name.clone(),
        kind: kind.to_string(),
        input_channels: input.channels.len(),
        input_deps: input.deps.len(),
        witness_len,
        classes: 0,
        adaptive_channels: 0,
        escape_channels: 0,
        feedback_cut: 0,
        synth_channels: 0,
        synth_deps: 0,
        acyclic: false,
        checker_ok: false,
        checker_err: None,
        certified_pairs: 0,
        unreachable_pairs: 0,
        escape_ok: false,
    };
    if witness_len == 0 {
        return (
            SynthEntry {
                checker_err: Some("input is not cyclic; nothing to synthesize".into()),
                ..base
            },
            None,
        );
    }
    let result = match synthesize(input) {
        Ok(r) => r,
        Err(err) => {
            return (
                SynthEntry {
                    checker_err: Some(err),
                    ..base
                },
                None,
            )
        }
    };
    let cert = prove(&result.spec);
    let checked = crate::check::check(&result.spec, &cert);
    let e = SynthEntry {
        classes: result.num_classes(),
        adaptive_channels: result.num_adaptive,
        escape_channels: result.escape.len(),
        feedback_cut: result.feedback.len(),
        synth_channels: result.spec.channels.len(),
        synth_deps: result.spec.deps.len(),
        acyclic: cert.verdict.is_acyclic(),
        checker_ok: checked.is_ok(),
        checker_err: checked.err(),
        certified_pairs: cert.paths.len(),
        unreachable_pairs: cert.unreachable.len(),
        escape_ok: escape_dead_end(&result).is_none(),
        ..base
    };
    (e, Some(result))
}

/// Run a seeded saturating [`SpecSim`] over a spec.
fn spec_probe(
    spec: &GraphSpec,
    seed: u64,
    per_node: usize,
    max_cycles: u64,
) -> turnroute_vc::SpecSimReport {
    let chans: Vec<(u32, u32)> = spec.channels.iter().map(|c| (c.src, c.dst)).collect();
    let view = SpecView {
        num_nodes: spec.num_nodes as usize,
        channels: &chans,
        routes: &spec.routes,
    };
    SpecSim::new(view, seed, per_node).run(200, max_cycles)
}

/// Confront an unsplit/synthesized pair with the channel-graph resource
/// model over a fixed seed sweep: the unsplit relation must deadlock for
/// at least one seed (deadlock is *possible* without the split), and the
/// synthesized relation must deliver every packet on *every* seed.
fn spec_pair(
    family: &str,
    unsplit: &GraphSpec,
    synth: &GraphSpec,
    base_seed: u64,
    per_node: usize,
    quick: bool,
) -> SynthCrossCheck {
    let tries = if quick { 16 } else { 48 };
    let max = if quick { 50_000 } else { 200_000 };
    let mut unsplit_deadlocked = false;
    let mut injected = 0u64;
    let mut delivered = 0u64;
    let mut synth_deadlocked = false;
    for t in 0..tries {
        let seed = base_seed + t;
        if !unsplit_deadlocked {
            unsplit_deadlocked = spec_probe(unsplit, seed, per_node, max).deadlocked;
        }
        let after = spec_probe(synth, seed, per_node, max);
        injected += after.injected;
        delivered += after.delivered;
        synth_deadlocked |= after.deadlocked;
    }
    SynthCrossCheck {
        config: format!("{family} saturating probe"),
        engine: "specsim".into(),
        unsplit_deadlocked,
        synth_injected: injected,
        synth_delivered: delivered,
        synth_deadlocked,
    }
}

/// The mesh direction of the physical channel `a -> b`.
fn mesh_dir(mesh: &Mesh, a: u32, b: u32) -> Direction {
    let (ca, cb) = (mesh.coord_of(NodeId(a)), mesh.coord_of(NodeId(b)));
    for dim in 0..mesh.num_dims() {
        if cb.get(dim) != ca.get(dim) {
            let sign = if cb.get(dim) > ca.get(dim) {
                Sign::Plus
            } else {
                Sign::Minus
            };
            return Direction::new(dim, sign);
        }
    }
    panic!("channel {a} -> {b} is not a mesh link");
}

/// Tabulate a physical-channel spec as a 1-class [`TableVcRouting`].
fn table_of_spec(name: &str, mesh: &Mesh, spec: &GraphSpec) -> TableVcRouting {
    let n = spec.num_nodes as usize;
    let vdir_of = |c: u32| {
        let ch = &spec.channels[c as usize];
        VirtualDirection::new(mesh_dir(mesh, ch.src, ch.dst), VcClass::One)
    };
    let mut table = TableVcRouting::builder(name, mesh, 1, false);
    for dir in Direction::all(2) {
        table.declare_channel(VirtualDirection::new(dir, VcClass::One));
    }
    for dest in 0..n {
        for v in 0..n {
            if v == dest {
                continue;
            }
            let offered: Vec<VirtualDirection> =
                spec.routes[dest][v].iter().map(|&m| vdir_of(m)).collect();
            table.set_route(NodeId(dest as u32), NodeId(v as u32), None, offered);
        }
        for (c, ch) in spec.channels.iter().enumerate() {
            if ch.dst == dest as u32 {
                continue;
            }
            let offered: Vec<VirtualDirection> = spec.routes[dest][n + c]
                .iter()
                .map(|&m| vdir_of(m))
                .collect();
            table.set_route(
                NodeId(dest as u32),
                NodeId(ch.dst),
                Some(vdir_of(c as u32)),
                offered,
            );
        }
    }
    table
}

/// Tabulate a synthesized mesh assignment as a 2-class
/// [`TableVcRouting`]: the adaptive class rides class One of each link,
/// the escape class rides class Two.
fn table_of_synth(name: &str, mesh: &Mesh, result: &SynthResult) -> TableVcRouting {
    let spec = &result.spec;
    let n = spec.num_nodes as usize;
    let k = result.num_adaptive;
    let vdir_of = |c: u32| {
        let ch = &spec.channels[c as usize];
        let class = if (c as usize) < k {
            VcClass::One
        } else {
            VcClass::Two
        };
        VirtualDirection::new(mesh_dir(mesh, ch.src, ch.dst), class)
    };
    let mut table = TableVcRouting::builder(name, mesh, 2, false);
    for dir in Direction::all(2) {
        table.declare_channel(VirtualDirection::new(dir, VcClass::One));
        table.declare_channel(VirtualDirection::new(dir, VcClass::Two));
    }
    for dest in 0..n {
        for v in 0..n {
            if v == dest {
                continue;
            }
            let offered: Vec<VirtualDirection> =
                spec.routes[dest][v].iter().map(|&m| vdir_of(m)).collect();
            table.set_route(NodeId(dest as u32), NodeId(v as u32), None, offered);
        }
        for (c, ch) in spec.channels.iter().enumerate() {
            if ch.dst == dest as u32 {
                continue;
            }
            let offered: Vec<VirtualDirection> = spec.routes[dest][n + c]
                .iter()
                .map(|&m| vdir_of(m))
                .collect();
            table.set_route(
                NodeId(dest as u32),
                NodeId(ch.dst),
                Some(vdir_of(c as u32)),
                offered,
            );
        }
    }
    table
}

/// Drive the wormhole VC engine over a tabulated routing with a fixed
/// seeded workload; returns `(injected, delivered, deadlocked)`.
fn drive_vcsim(
    mesh: &Mesh,
    table: &TableVcRouting,
    seed: u64,
    per_node: usize,
    max_cycles: u64,
) -> (u64, u64, bool) {
    let pattern = Uniform::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.0)
        .warmup_cycles(0)
        .measure_cycles(max_cycles)
        .drain_cycles(0)
        .deadlock_threshold(300)
        .seed(seed)
        .build();
    let mut sim = VcSim::new(mesh, table, &pattern, cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = mesh.num_nodes();
    let mut injected = 0u64;
    for v in 0..n {
        for _ in 0..per_node {
            let mut d = rng.gen_range(0..n - 1);
            if d >= v {
                d += 1;
            }
            sim.inject_packet(NodeId(v as u32), NodeId(d as u32), 4);
            injected += 1;
        }
    }
    let mut cycles = 0u64;
    loop {
        let delivered = sim
            .packets()
            .iter()
            .filter(|p| p.delivered.is_some())
            .count() as u64;
        if delivered == injected || sim.deadlocked() || cycles >= max_cycles {
            return (injected, delivered, sim.deadlocked());
        }
        sim.step();
        cycles += 1;
    }
}

/// Run the full synth matrix.
pub fn run(opts: &SynthOptions) -> SynthReport {
    let mut entries = Vec::new();
    let mut cross_checks = Vec::new();
    let mesh4 = Mesh::new_2d(4, 4);

    // The 4 paper-unsafe two-turn sets: same 28-pair sweep as turnprove,
    // keeping the survivors' complement.
    let turns = Turn::all_ninety(2);
    for i in 0..turns.len() {
        for j in (i + 1)..turns.len() {
            let mut set = TurnSet::all_ninety(2);
            set.prohibit(turns[i]);
            set.prohibit(turns[j]);
            if Cdg::from_turn_set(&mesh4, &set).is_acyclic() {
                continue;
            }
            let spec = extract::from_turn_set(
                format!("mesh4x4/two-turn {{{}, {}}} (unsafe)", turns[i], turns[j]),
                &mesh4,
                &set,
            );
            let (e, _) = entry("turn-set", &spec);
            entries.push(e);
        }
    }

    // The fully unrestricted mesh: every 90-degree turn allowed. This is
    // the configuration whose synthesized split generalizes double-y, and
    // the one the wormhole VC engine cross-checks end to end.
    let unrestricted =
        extract::from_turn_set("mesh4x4/unrestricted", &mesh4, &TurnSet::all_ninety(2));
    let (e, mesh_synth) = entry("turn-set", &unrestricted);
    entries.push(e);
    if let Some(result) = &mesh_synth {
        cross_checks.push(spec_pair(
            "mesh4x4/unrestricted",
            &unrestricted,
            &result.spec,
            0x5EED_0001,
            8,
            opts.quick,
        ));
        let max = if opts.quick { 20_000 } else { 60_000 };
        let tries = if opts.quick { 8u64 } else { 16 };
        let before = table_of_spec("mesh4x4/unrestricted (1 class)", &mesh4, &unrestricted);
        let after = table_of_synth("mesh4x4/unrestricted synth (2 classes)", &mesh4, result);
        let mut unsplit_deadlocked = false;
        let mut injected = 0u64;
        let mut delivered = 0u64;
        let mut synth_deadlocked = false;
        for t in 0..tries {
            let seed = 0x5EED_0007 + t;
            if !unsplit_deadlocked {
                let (_, _, dead) = drive_vcsim(&mesh4, &before, seed, 8, max);
                unsplit_deadlocked = dead;
            }
            let (inj, del, dead) = drive_vcsim(&mesh4, &after, seed, 8, max);
            injected += inj;
            delivered += del;
            synth_deadlocked |= dead;
        }
        cross_checks.push(SynthCrossCheck {
            config: "mesh4x4/unrestricted wormhole probe".into(),
            engine: "vcsim".into(),
            unsplit_deadlocked,
            synth_injected: injected,
            synth_delivered: delivered,
            synth_deadlocked,
        });
    }

    // Both torus radices unrestricted: the wraparound rings alone are
    // cyclic, so every turn set needs the split.
    for (name, torus) in [
        ("4-ary 2-cube/unrestricted", Torus::new(4, 2)),
        ("3-ary 2-cube/unrestricted", Torus::new(3, 2)),
    ] {
        let spec = extract::from_turn_set(name, &torus, &TurnSet::all_ninety(2));
        let (e, result) = entry("turn-set", &spec);
        entries.push(e);
        if name.starts_with("4-ary") {
            if let Some(result) = &result {
                cross_checks.push(spec_pair(
                    name,
                    &spec,
                    &result.spec,
                    0x5EED_0002,
                    8,
                    opts.quick,
                ));
            }
        }
    }

    // The hexagonal mesh unrestricted over its six directions.
    let hexm = HexMesh::new(4, 4);
    let spec = extract::from_turn_set("hex4x4/unrestricted", &hexm, &TurnSet::all_ninety(3));
    let (e, result) = entry("turn-set", &spec);
    entries.push(e);
    if let Some(result) = &result {
        cross_checks.push(spec_pair(
            "hex4x4/unrestricted",
            &spec,
            &result.spec,
            0x5EED_0003,
            64,
            opts.quick,
        ));
    }

    // The irregular 6-node netlist, unrestricted (its up*/down* form in
    // turnprove is acyclic; dropping the discipline makes it cyclic).
    let spec = extract::from_netlist_unrestricted(
        "netlist6/unrestricted (irregular)",
        6,
        &netlist6_links(),
    );
    let (e, result) = entry("netlist", &spec);
    entries.push(e);
    if let Some(result) = &result {
        cross_checks.push(spec_pair(
            "netlist6/unrestricted",
            &spec,
            &result.spec,
            0x5EED_0004,
            8,
            opts.quick,
        ));
    }

    // The 3-stage butterfly, unrestricted.
    let spec = extract::from_netlist_unrestricted(
        "butterfly3/unrestricted (multistage)",
        12,
        &butterfly3_links(),
    );
    let (e, result) = entry("netlist", &spec);
    entries.push(e);
    if let Some(result) = &result {
        cross_checks.push(spec_pair(
            "butterfly3/unrestricted",
            &spec,
            &result.spec,
            0x5EED_0005,
            8,
            opts.quick,
        ));
    }

    // The planted cyclic VC assignment: a *virtual*-channel input whose
    // synthesized split stacks a second split on top.
    let spec = extract::from_vc_routing(
        "mesh4x4/planted-cyclic-vc",
        &mesh4,
        &extract::PlantedCyclicVc,
    );
    let (e, result) = entry("vc", &spec);
    entries.push(e);
    if let Some(result) = &result {
        cross_checks.push(spec_pair(
            "mesh4x4/planted-cyclic-vc",
            &spec,
            &result.spec,
            0x5EED_0006,
            16,
            opts.quick,
        ));
    }

    if opts.inject_bad {
        entries.push(inject_bad_entry(&mesh_synth));
    }

    SynthReport {
        quick: opts.quick,
        entries,
        cross_checks,
    }
}

/// The planted defect behind `turnsynth --inject-bad`: take the clean
/// mesh synthesis, wire a two-channel dependency cycle *inside the
/// escape class* (a reversal pair, each offering the other), and pair
/// the tampered spec with the clean certificate's numbering. The
/// synthesizer never sees the tamper — the independent checker must be
/// the one to reject it.
fn inject_bad_entry(mesh_synth: &Option<SynthResult>) -> SynthEntry {
    let result = mesh_synth
        .as_ref()
        .expect("mesh4x4/unrestricted must synthesize before the self-test");
    let clean_cert = prove(&result.spec);
    let mut bad = result.spec.clone();
    bad.name = "mesh4x4/unrestricted/synth (escape cycle injected via --inject-bad)".into();
    let k = result.num_adaptive;
    // A reversal pair inside the escape class: e_ab and e_ba.
    let (ea, eb) = result
        .escape
        .iter()
        .find_map(|a| {
            result
                .escape
                .iter()
                .find(|b| b.src == a.dst && b.dst == a.src)
                .map(|b| (a.id, b.id))
        })
        .expect("bidirectional mesh links have reversal pairs");
    bad.deps.push((ea, eb));
    bad.deps.push((eb, ea));
    bad.deps.sort_unstable();
    let n = bad.num_nodes as usize;
    for dest in 0..n {
        let state_a = n + ea as usize;
        let state_b = n + eb as usize;
        if !bad.routes[dest][state_a].is_empty() && !bad.routes[dest][state_a].contains(&eb) {
            bad.routes[dest][state_a].push(eb);
        }
        if !bad.routes[dest][state_b].is_empty() && !bad.routes[dest][state_b].contains(&ea) {
            bad.routes[dest][state_b].push(ea);
        }
    }
    let checked = crate::check::check(&bad, &clean_cert);
    SynthEntry {
        config: bad.name.clone(),
        kind: "vc".into(),
        input_channels: result.num_adaptive,
        input_deps: 0,
        witness_len: 2,
        classes: result.num_classes(),
        adaptive_channels: k,
        escape_channels: result.escape.len(),
        feedback_cut: result.feedback.len(),
        synth_channels: bad.channels.len(),
        synth_deps: bad.deps.len(),
        acyclic: clean_cert.verdict.is_acyclic(),
        checker_ok: checked.is_ok(),
        checker_err: checked.err(),
        certified_pairs: clean_cert.paths.len(),
        unreachable_pairs: clean_cert.unreachable.len(),
        escape_ok: false,
    }
}
