//! Exhaustive design-space enumeration of turn-set prohibitions.
//!
//! The paper's Section 3 argument is fundamentally a census: enumerate the
//! candidate turn prohibitions, check each against the channel dependency
//! graph, and count the survivors. This module re-runs every census the
//! paper states a number for — plus the sweeps it only argues informally —
//! and renders each count as a [`Claim`]:
//!
//! * the **two-turn census** on the 2D mesh: 16 candidates, 12 deadlock
//!   free, exactly three unique once the mesh symmetry group is factored
//!   out (west-first, north-last, negative-first);
//! * the **exhaustive sweep** over all `2^8 = 256` subsets of the eight
//!   90-degree turns of the 2D mesh, proving mechanically that no
//!   deadlock-free set prohibits fewer than a quarter of the turns
//!   (Theorem 1's `n(n-1)` bound for `n = 2`) and that breaking every
//!   abstract cycle is necessary for deadlock freedom;
//! * the **3D one-turn-per-cycle census** (`4^6 = 4096` candidates): the
//!   generalization the paper never ran, with 176 survivors in 9 symmetry
//!   classes, negative-first among them in a class of 8;
//! * the **hexagonal triangle cycles** Section 7 sketches: four cycles of
//!   three turns, broken by the negative-first hex prohibition.
//!
//! Failures are not bare booleans: any set that should have been acyclic
//! but is not (or vice versa) is reported with a witness cycle via
//! [`crate::claim::witness_cycle`].

use crate::claim::{witness_cycle, Claim};
use turnroute_model::cycle::{
    breaks_all_abstract_cycles, breaks_all_hex_cycles, hex_abstract_cycles, min_prohibited_turns,
    num_ninety_turns, one_turn_per_cycle_census, two_turn_census,
};
use turnroute_model::symmetry::{equivalence_classes, mesh_symmetries};
use turnroute_model::{presets, Cdg, Turn, TurnSet};
use turnroute_topology::{Mesh, Topology};

/// The Section 3 two-turn census on `mesh`, rendered as claims.
///
/// Checks the candidate count (16), the deadlock-free count (12), the
/// symmetry-class count of the survivors (3), that each of the paper's
/// three named algorithms appears in a distinct class, and that every
/// rejected candidate comes with a concrete dependency cycle.
pub fn two_turn_claims(mesh: &Mesh) -> Vec<Claim> {
    let census = two_turn_census(mesh);
    let mut claims = vec![
        Claim::check(
            "2d-two-turn-candidates",
            "one turn prohibited from each of the two abstract cycles",
            16,
            census.total(),
        ),
        Claim::check(
            "2d-two-turn-deadlock-free",
            "candidates whose CDG is acyclic (paper: 12 of 16)",
            12,
            census.deadlock_free(),
        ),
    ];

    let safe: Vec<TurnSet> = census
        .entries
        .iter()
        .filter(|(_, ok)| *ok)
        .map(|(s, _)| s.clone())
        .collect();
    let classes = equivalence_classes(&safe);
    claims.push(Claim::check(
        "2d-two-turn-symmetry-classes",
        "unique deadlock-free prohibitions up to mesh symmetry (paper: three)",
        3,
        classes.len(),
    ));

    // Each named algorithm must land in its own class; together the three
    // classes must cover all 12 survivors (4 + 4 + 4).
    let named = [
        ("west-first", presets::west_first_turns()),
        ("north-last", presets::north_last_turns()),
        ("negative-first", presets::negative_first_turns(2)),
    ];
    let syms = mesh_symmetries(2);
    let mut covered = vec![usize::MAX; named.len()];
    for (i, (_, set)) in named.iter().enumerate() {
        let orbit: Vec<TurnSet> = syms.iter().map(|s| s.apply(set)).collect();
        for (ci, class) in classes.iter().enumerate() {
            if class.iter().any(|&k| orbit.contains(&safe[k])) {
                covered[i] = ci;
            }
        }
    }
    let distinct = {
        let mut c = covered.clone();
        c.sort_unstable();
        c.dedup();
        c.len() == named.len() && !covered.contains(&usize::MAX)
    };
    claims.push(Claim::check(
        "2d-named-algorithms-are-the-classes",
        "west-first, north-last, negative-first each represent a distinct class",
        true,
        distinct,
    ));

    // Every rejected candidate must produce a concrete witness cycle.
    let mut witnesses = 0usize;
    let mut example = None;
    for (set, ok) in &census.entries {
        if *ok {
            continue;
        }
        let cdg = Cdg::from_turn_set(mesh, set);
        if let Some(cycle) = cdg.find_cycle() {
            witnesses += 1;
            if example.is_none() {
                example = Some(format!(
                    "prohibiting only {{{}}}: {}",
                    set.prohibited_ninety()
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                    witness_cycle(&cdg, &cycle)
                ));
            }
        }
    }
    let mut claim = Claim::check(
        "2d-rejected-candidates-have-witness-cycles",
        "each of the 4 unsafe candidates yields a concrete dependency cycle",
        census.total() - census.deadlock_free(),
        witnesses,
    );
    if let Some(w) = example {
        claim = claim.with_witness(w);
    }
    claims.push(claim);

    // Every survivor must induce a *usable* routing algorithm: the
    // maximal coherent minimal function of each safe set is fully
    // connected with no adversarially reachable dead end.
    let mut connected = 0usize;
    let mut dead_witness = None;
    for (i, set) in safe.iter().enumerate() {
        let routing = crate::routing::TurnSetRouting::new(format!("safe-{i}"), set.clone(), mesh);
        match crate::routing::find_dead_end(mesh, &routing) {
            None if routing.fully_connected() => connected += 1,
            None => {
                dead_witness.get_or_insert_with(|| format!("safe set {i} is not connected"));
            }
            Some(w) => {
                dead_witness.get_or_insert(w);
            }
        }
    }
    let mut claim = Claim::check(
        "2d-safe-sets-induce-connected-routing",
        "each deadlock-free prohibition yields a coherent, fully connected \
         minimal routing function",
        safe.len(),
        connected,
    );
    if let Some(w) = dead_witness {
        claim = claim.with_witness(w);
    }
    claims.push(claim);
    claims
}

/// The exhaustive sweep over every subset of the 2D mesh's eight
/// 90-degree turns (`2^8 = 256` turn sets), CDG-checked on `mesh`.
///
/// This is the mechanical form of Theorem 1 for `n = 2`: prohibiting
/// fewer than `n(n-1) = 2` turns (a quarter of `4n(n-1) = 8`) can never
/// break both abstract cycles, so the minimum prohibition count among
/// deadlock-free sets is exactly 2 — and every deadlock-free set breaks
/// every abstract cycle (necessity).
pub fn exhaustive_2d_claims(mesh: &Mesh) -> Vec<Claim> {
    let turns: Vec<Turn> = Turn::all_ninety(2);
    assert_eq!(turns.len(), num_ninety_turns(2));
    let total = 1usize << turns.len();

    let mut deadlock_free = 0usize;
    let mut min_prohibited = usize::MAX;
    let mut free_with_two = 0usize;
    let mut free_not_breaking_all = 0usize;
    let mut small_sets_cyclic = 0usize;
    let mut small_witness = None;

    for mask in 0..total {
        let mut set = TurnSet::all_ninety(2);
        let mut prohibited = 0usize;
        for (i, &t) in turns.iter().enumerate() {
            if mask & (1 << i) != 0 {
                set.prohibit(t);
                prohibited += 1;
            }
        }
        let cdg = Cdg::from_turn_set(mesh, &set);
        match cdg.find_cycle() {
            None => {
                deadlock_free += 1;
                min_prohibited = min_prohibited.min(prohibited);
                if prohibited == 2 {
                    free_with_two += 1;
                }
                if !breaks_all_abstract_cycles(&set) {
                    free_not_breaking_all += 1;
                }
            }
            Some(cycle) => {
                if prohibited < min_prohibited_turns(2) {
                    small_sets_cyclic += 1;
                    if small_witness.is_none() {
                        small_witness = Some(format!(
                            "{} prohibition(s) {{{}}}: {}",
                            prohibited,
                            set.prohibited_ninety()
                                .iter()
                                .map(|t| t.to_string())
                                .collect::<Vec<_>>()
                                .join(", "),
                            witness_cycle(&cdg, &cycle)
                        ));
                    }
                }
            }
        }
    }

    let mut quarter = Claim::check(
        "2d-quarter-of-turns-is-the-minimum",
        "fewest prohibited turns in any deadlock-free set over all 256 subsets \
         (Theorem 1: n(n-1) = 2, a quarter of the 8 turns)",
        min_prohibited_turns(2),
        min_prohibited,
    );
    // All 9 subsets below the bound (the empty set and the 8 singletons)
    // must be cyclic — the quarter claim in its sharpest form.
    let mut below = Claim::check(
        "2d-all-subsets-below-quarter-are-cyclic",
        "every subset prohibiting fewer than 2 turns has a dependency cycle",
        9,
        small_sets_cyclic,
    );
    if let Some(w) = small_witness {
        below = below.with_witness(w.clone());
        if quarter.passed {
            quarter = quarter.with_witness(w);
        }
    }

    vec![
        quarter,
        below,
        Claim::check(
            "2d-deadlock-free-breaks-all-cycles",
            "deadlock-free subsets that fail to break every abstract cycle \
             (Theorem 1 necessity: must be none)",
            0,
            free_not_breaking_all,
        ),
        Claim::check(
            "2d-minimum-sets-match-two-turn-census",
            "deadlock-free subsets with exactly 2 prohibitions equal the census's 12",
            12,
            free_with_two,
        ),
        Claim::check(
            "2d-sweep-covered-all-subsets",
            "sanity: the sweep visited every subset and some survive",
            true,
            deadlock_free > 12 && deadlock_free < total,
        ),
    ]
}

/// The 3D one-turn-per-cycle census (`4^6 = 4096` candidates on a cubic
/// mesh), with symmetry reduction under the 48-element hyperoctahedral
/// group — the generalization of "three unique algorithms".
pub fn census_3d_claims(mesh: &Mesh) -> Vec<Claim> {
    assert_eq!(mesh.num_dims(), 3, "the 3D census needs a 3D mesh");
    let census = one_turn_per_cycle_census(mesh);
    let safe: Vec<TurnSet> = census
        .entries
        .iter()
        .filter(|(_, ok)| *ok)
        .map(|(s, _)| s.clone())
        .collect();
    let classes = equivalence_classes(&safe);

    let nf = presets::negative_first_turns(3);
    let nf_class_size = classes
        .iter()
        .find(|class| class.iter().any(|&k| safe[k] == nf))
        .map_or(0, Vec::len);

    vec![
        Claim::check(
            "3d-census-candidates",
            "one turn prohibited per abstract cycle of the 3D mesh (4^6)",
            4096,
            census.total(),
        ),
        Claim::check(
            "3d-census-deadlock-free",
            "3D candidates whose CDG is acyclic",
            176,
            census.deadlock_free(),
        ),
        Claim::check(
            "3d-census-symmetry-classes",
            "unique 3D prohibitions up to the 48 mesh symmetries",
            9,
            classes.len(),
        ),
        Claim::check(
            "3d-negative-first-class-size",
            "the symmetry class containing negative-first (0 = not deadlock free)",
            8,
            nf_class_size,
        ),
    ]
}

/// The hexagonal-network cycles of Section 7: four triangle cycles of
/// three turns each, all broken by the negative-first hex prohibition,
/// none by the unrestricted turn set.
pub fn hex_claims() -> Vec<Claim> {
    let cycles = hex_abstract_cycles();
    vec![
        Claim::check(
            "hex-triangle-cycles",
            "minimal abstract cycles of a hexagonal network are 4 triangles",
            4,
            cycles.len(),
        ),
        Claim::check(
            "hex-triangles-close",
            "each triangle's three turns chain and close",
            true,
            cycles.iter().all(|c| {
                let t = c.turns();
                (0..3).all(|k| t[k].to_dir() == t[(k + 1) % 3].from_dir())
            }),
        ),
        Claim::check(
            "hex-negative-first-breaks-all",
            "the negative-first prohibition breaks all four triangles; \
             the unrestricted set breaks none",
            true,
            breaks_all_hex_cycles(&presets::negative_first_turns(3))
                && !breaks_all_hex_cycles(&TurnSet::all_ninety(3)),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_pass(claims: &[Claim]) {
        for c in claims {
            assert!(c.passed, "{}", c.render());
        }
    }

    #[test]
    fn two_turn_census_claims_all_pass() {
        all_pass(&two_turn_claims(&Mesh::new_2d(4, 4)));
    }

    #[test]
    fn exhaustive_sweep_claims_all_pass() {
        let claims = exhaustive_2d_claims(&Mesh::new_2d(4, 4));
        all_pass(&claims);
        // The quarter claim must carry a witness cycle for a too-small set.
        let below = claims
            .iter()
            .find(|c| c.name == "2d-all-subsets-below-quarter-are-cyclic")
            .unwrap();
        let w = below.witness.as_deref().unwrap();
        assert!(w.contains("channel cycle"), "{w}");
    }

    #[test]
    fn hex_claims_all_pass() {
        all_pass(&hex_claims());
    }

    #[test]
    fn census_3d_claims_all_pass() {
        all_pass(&census_3d_claims(&Mesh::new_cubic(3, 3)));
    }
}
