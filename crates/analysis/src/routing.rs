//! Turn sets as executable routing functions, plus the adversarial
//! reachability check that licenses simulator cross-validation.
//!
//! The enumeration sweeps classify *turn sets*; the simulator runs
//! *routing functions*. The bridge is subtler than "offer every
//! productive direction the set allows": a turn set does not encode the
//! paper's phase discipline, so the greedy induced function has
//! adversarial dead ends for virtually every prohibition (take the
//! prohibited turn's source direction last and the packet is stuck —
//! e.g. hopping north first under west-first strands a packet that
//! still needs to go west). What the paper's algorithms actually do is
//! keep the trip *completable* at every hop.
//!
//! [`TurnSetRouting`] constructs exactly that: the **maximal coherent
//! minimal routing function** of a turn set on a topology — a direction
//! is offered iff it is productive, turn-legal, and the remaining trip
//! can still finish inside the turn set. Computed by backward induction
//! over distance-to-destination, this mechanically re-derives the phase
//! ordering (under the west-first set, westward hops come first) and
//! lets a set's static CDG verdict be cross-validated against live
//! simulations.
//!
//! [`find_dead_end`] is the matching audit: explore every `(node,
//! arrival)` state reachable under *any* sequence of offered choices and
//! report one where nothing is offered. `None` here plus an acyclic CDG
//! is what guarantees a simulation delivers under any arbitration.

use turnroute_model::{RoutingFunction, TurnSet};
use turnroute_topology::{DirSet, Direction, NodeId, Topology};

/// The maximal coherent minimal routing function induced by a turn set
/// on a fixed topology: offer every productive, turn-legal direction
/// from which the rest of the trip remains completable.
///
/// Bound to the topology supplied at construction; `route` panics if
/// called with a topology of different shape.
#[derive(Debug, Clone)]
pub struct TurnSetRouting {
    name: String,
    set: TurnSet,
    num_nodes: usize,
    num_dims: usize,
    /// `table[dest * num_states + state]` = offered-direction bitmask,
    /// where `state = node * (2n+1) + arrival_code`.
    table: Vec<u32>,
}

impl TurnSetRouting {
    /// Build the coherent function for `set` on `topo`, named `name`.
    ///
    /// Cost is `O(nodes^2 · directions)` table construction, done once.
    ///
    /// # Panics
    ///
    /// Panics if `set` and `topo` disagree on dimensionality.
    pub fn new(name: impl Into<String>, set: TurnSet, topo: &dyn Topology) -> TurnSetRouting {
        assert_eq!(
            set.num_dims(),
            topo.num_dims(),
            "turn set and topology dimensionality must match"
        );
        let n = topo.num_nodes();
        let nd = topo.num_dims();
        let num_arr = 2 * nd + 1;
        let num_states = n * num_arr;
        let state_of = |v: NodeId, arr: Option<Direction>| -> usize {
            v.index() * num_arr + arr.map_or(0, |a| 1 + a.index())
        };

        let mut table = vec![0u32; n * num_states];
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        for dest in (0..n).map(|d| NodeId(d as u32)) {
            // Backward induction: productive moves strictly decrease the
            // distance to `dest`, so nodes processed nearest-first always
            // find their successors' entries already computed.
            order.clear();
            order.extend((0..n).map(|v| NodeId(v as u32)).filter(|&v| v != dest));
            order.sort_by_key(|&v| topo.min_hops(v, dest));
            for &v in &order {
                for code in 0..num_arr {
                    let arr = match code {
                        0 => None,
                        c => Some(Direction::from_index(c - 1)),
                    };
                    let legal = set.legal_outputs(arr);
                    let mut bits = 0u32;
                    for dir in topo.productive_dirs(v, dest).intersection(legal).iter() {
                        let Some(u) = topo.neighbor(v, dir) else {
                            continue;
                        };
                        let done = u == dest
                            || table[dest.index() * num_states + state_of(u, Some(dir))] != 0;
                        if done {
                            bits |= 1 << dir.index();
                        }
                    }
                    table[dest.index() * num_states + state_of(v, arr)] = bits;
                }
            }
        }

        TurnSetRouting {
            name: name.into(),
            set,
            num_nodes: n,
            num_dims: nd,
            table,
        }
    }

    /// The underlying turn set.
    pub fn turn_set(&self) -> &TurnSet {
        &self.set
    }

    /// Whether every source can inject toward every destination — the
    /// cheap necessary half of connectivity (the sufficient half is that
    /// every offered continuation is completable, which holds by
    /// construction).
    pub fn fully_connected(&self) -> bool {
        let num_arr = 2 * self.num_dims + 1;
        let num_states = self.num_nodes * num_arr;
        (0..self.num_nodes).all(|dest| {
            (0..self.num_nodes)
                .filter(|&src| src != dest)
                .all(|src| self.table[dest * num_states + src * num_arr] != 0)
        })
    }
}

impl RoutingFunction for TurnSetRouting {
    fn name(&self) -> &str {
        &self.name
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        assert_eq!(topo.num_nodes(), self.num_nodes, "bound to one topology");
        if current == dest {
            return DirSet::empty();
        }
        let num_arr = 2 * self.num_dims + 1;
        let num_states = self.num_nodes * num_arr;
        let state = current.index() * num_arr + arrived.map_or(0, |a| 1 + a.index());
        let bits = self.table[dest.index() * num_states + state];
        Direction::all(self.num_dims)
            .filter(|d| bits & (1 << d.index()) != 0)
            .collect()
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn turn_set(&self, num_dims: usize) -> Option<TurnSet> {
        (num_dims == self.set.num_dims()).then(|| self.set.clone())
    }
}

/// Search the adversarial routing state graph for a reachable dead end:
/// a `(node, arrival)` state short of the destination where `routing`
/// offers no direction at all.
///
/// Returns a description of the first dead end found, or `None` when
/// every adversarially reachable state keeps moving. Unlike the
/// verifier's greedy connectivity walk (which follows one policy), this
/// explores *every* offered branch, so `None` here plus an acyclic CDG
/// guarantees the simulator delivers under any arbitration.
pub fn find_dead_end(topo: &dyn Topology, routing: &dyn RoutingFunction) -> Option<String> {
    let n = topo.num_nodes();
    let num_arr = 2 * topo.num_dims() + 1;
    let state_of =
        |v: NodeId, arr: Option<Direction>| v.index() * num_arr + arr.map_or(0, |a| 1 + a.index());

    let mut seen = vec![false; n * num_arr];
    let mut frontier: Vec<(NodeId, Option<Direction>)> = Vec::new();
    for dest in (0..n).map(|d| NodeId(d as u32)) {
        seen.iter_mut().for_each(|s| *s = false);
        frontier.clear();
        for src in (0..n).map(|s| NodeId(s as u32)) {
            if src != dest {
                seen[state_of(src, None)] = true;
                frontier.push((src, None));
            }
        }
        while let Some((v, arr)) = frontier.pop() {
            let offered = routing.route(topo, v, dest, arr);
            if offered.is_empty() {
                return Some(match arr {
                    Some(a) => format!("dead end at {v} (arrived {a}) routing toward {dest}"),
                    None => format!("dead end at {v} (at injection) routing toward {dest}"),
                });
            }
            for dir in offered.iter() {
                let Some(u) = topo.neighbor(v, dir) else {
                    continue; // flagged by the verifier's channels check
                };
                if u == dest {
                    continue;
                }
                let s = state_of(u, Some(dir));
                if !seen[s] {
                    seen[s] = true;
                    frontier.push((u, Some(dir)));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_model::verifier::verify;
    use turnroute_model::{presets, Cdg};
    use turnroute_topology::Mesh;

    #[test]
    fn preset_turn_sets_fully_verify_as_routing_functions() {
        let mesh = Mesh::new_2d(5, 4);
        for (name, set) in [
            ("west-first", presets::west_first_turns()),
            ("north-last", presets::north_last_turns()),
            ("negative-first", presets::negative_first_turns(2)),
            ("xy", presets::xy_turns()),
        ] {
            let routing = TurnSetRouting::new(name, set, &mesh);
            assert!(routing.fully_connected(), "{name}");
            let report = verify(&mesh, &routing);
            assert!(report.all_ok(), "{report}");
            assert_eq!(find_dead_end(&mesh, &routing), None, "{name}");
            assert!(
                Cdg::from_routing(&mesh, &routing).is_acyclic(),
                "{name}: induced CDG must stay inside the acyclic set CDG"
            );
        }
    }

    #[test]
    fn coherence_rederives_the_phase_discipline() {
        // Under the west-first set, a packet needing both west and north
        // must be offered only west at injection: hopping north first
        // would strand it (north->west is prohibited).
        let mesh = Mesh::new_2d(4, 4);
        let wf = TurnSetRouting::new("west-first", presets::west_first_turns(), &mesh);
        let src = mesh.node_at_coords(&[2, 0]);
        let dst = mesh.node_at_coords(&[0, 2]);
        let offered = wf.route(&mesh, src, dst, None);
        assert_eq!(offered.len(), 1, "{offered:?}");
        assert!(offered.contains(Direction::WEST));
        // Once the westward leg is done, adaptivity returns.
        let turn_point = mesh.node_at_coords(&[0, 0]);
        let north_only = wf.route(&mesh, turn_point, dst, Some(Direction::WEST));
        assert!(north_only.contains(Direction::NORTH));
    }

    #[test]
    fn over_restricted_set_has_a_dead_end() {
        // With every turn prohibited (straight continuation only), a
        // packet needing two legs can never turn: nothing coherent is
        // offered at injection, which the dead-end finder reports.
        let mesh = Mesh::new_2d(3, 3);
        let routing = TurnSetRouting::new("straight-only", TurnSet::no_turns(2), &mesh);
        assert!(!routing.fully_connected());
        let dead = find_dead_end(&mesh, &routing);
        assert!(dead.is_some());
        assert!(dead.unwrap().contains("dead end"), "must describe the stop");
    }
}
