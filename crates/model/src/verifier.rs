//! One-call verification of routing functions.
//!
//! Bundles every check this crate can run against a [`RoutingFunction`]
//! into a single report: deadlock freedom (channel dependency graph),
//! connectivity (every pair deliverable), minimality (distance strictly
//! decreases), channel validity (only existing channels offered), and
//! turn-set consistency (every move uses an allowed turn). Run it against
//! a custom algorithm before trusting it with a network.

use crate::{Cdg, RoutingFunction};
use turnroute_topology::{ChannelId, Direction, NodeId, Topology};

/// The outcome of one verification check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Check {
    /// The check ran and passed.
    Passed,
    /// The check ran and failed, with an explanation.
    Failed(String),
    /// The check does not apply (e.g. minimality of a nonminimal
    /// function).
    Skipped,
}

impl Check {
    /// Whether this check is not a failure.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Check::Failed(_))
    }
}

/// A full verification report for a routing function on a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationReport {
    /// Name of the verified algorithm.
    pub algorithm: String,
    /// Channel dependency graph acyclicity (Dally–Seitz deadlock
    /// freedom). The failure message includes a witness cycle.
    pub deadlock_free: Check,
    /// Every ordered pair of nodes is deliverable by greedily following
    /// offered directions (worst-case direction choice).
    pub connected: Check,
    /// For minimal functions: every offered move reduces the distance to
    /// the destination.
    pub minimal: Check,
    /// Every offered direction corresponds to an existing channel.
    pub channels_valid: Check,
    /// Every move is allowed by the function's declared turn set (if it
    /// declares one).
    pub turns_consistent: Check,
}

impl VerificationReport {
    /// Whether every applicable check passed.
    pub fn all_ok(&self) -> bool {
        self.deadlock_free.is_ok()
            && self.connected.is_ok()
            && self.minimal.is_ok()
            && self.channels_valid.is_ok()
            && self.turns_consistent.is_ok()
    }
}

impl std::fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "verification of {}:", self.algorithm)?;
        for (name, check) in [
            ("deadlock-free", &self.deadlock_free),
            ("connected", &self.connected),
            ("minimal", &self.minimal),
            ("channels-valid", &self.channels_valid),
            ("turns-consistent", &self.turns_consistent),
        ] {
            match check {
                Check::Passed => writeln!(f, "  {name}: ok")?,
                Check::Skipped => writeln!(f, "  {name}: n/a")?,
                Check::Failed(why) => writeln!(f, "  {name}: FAILED — {why}")?,
            }
        }
        Ok(())
    }
}

/// Run every applicable check of `routing` on `topo`.
///
/// Runtime is roughly `O(nodes^2 * diameter)` for connectivity plus the
/// CDG construction; keep topologies modest (hundreds of nodes).
pub fn verify(topo: &dyn Topology, routing: &dyn RoutingFunction) -> VerificationReport {
    VerificationReport {
        algorithm: routing.name().to_string(),
        deadlock_free: check_deadlock(topo, routing),
        connected: check_connected(topo, routing),
        minimal: check_minimal(topo, routing),
        channels_valid: check_channels(topo, routing),
        turns_consistent: check_turns(topo, routing),
    }
}

fn check_deadlock(topo: &dyn Topology, routing: &dyn RoutingFunction) -> Check {
    let cdg = Cdg::from_routing(topo, routing);
    match cdg.find_cycle() {
        None => Check::Passed,
        Some(cycle) => {
            let shown: Vec<String> = cycle
                .iter()
                .take(6)
                .map(|&c: &ChannelId| cdg.channels()[c.index()].to_string())
                .collect();
            Check::Failed(format!(
                "dependency cycle of {} channels: {}{}",
                cycle.len(),
                shown.join(" -> "),
                if cycle.len() > 6 { " -> ..." } else { "" }
            ))
        }
    }
}

/// Greedy worst-case walk: always take the *last* offered direction, a
/// simple adversarial choice. For minimal coherent functions this still
/// reaches the destination in exactly `min_hops` steps; bounded walk
/// length catches livelocks and dead ends.
fn check_connected(topo: &dyn Topology, routing: &dyn RoutingFunction) -> Check {
    let limit = 8 * (topo.num_nodes() + 8);
    for s in 0..topo.num_nodes() {
        for d in 0..topo.num_nodes() {
            if s == d {
                continue;
            }
            let (src, dst) = (NodeId(s as u32), NodeId(d as u32));
            let mut cur = src;
            let mut arrived: Option<Direction> = None;
            let mut hops = 0usize;
            while cur != dst {
                let dirs = routing.route(topo, cur, dst, arrived);
                let Some(dir) = dirs.iter().last() else {
                    return Check::Failed(format!(
                        "dead end at {cur} routing {src} -> {dst} (arrived {arrived:?})"
                    ));
                };
                let Some(next) = topo.neighbor(cur, dir) else {
                    return Check::Failed(format!(
                        "nonexistent channel {dir} offered at {cur} for {src} -> {dst}"
                    ));
                };
                cur = next;
                arrived = Some(dir);
                hops += 1;
                if hops > limit {
                    return Check::Failed(format!(
                        "walk {src} -> {dst} exceeded {limit} hops (livelock?)"
                    ));
                }
            }
        }
    }
    Check::Passed
}

fn check_minimal(topo: &dyn Topology, routing: &dyn RoutingFunction) -> Check {
    if !routing.is_minimal() {
        return Check::Skipped;
    }
    for cur in 0..topo.num_nodes() {
        let cur = NodeId(cur as u32);
        for dst in 0..topo.num_nodes() {
            let dst = NodeId(dst as u32);
            if cur == dst {
                continue;
            }
            let here = topo.min_hops(cur, dst);
            for dir in routing.route(topo, cur, dst, None).iter() {
                let Some(next) = topo.neighbor(cur, dir) else {
                    continue; // reported by channels_valid
                };
                if topo.min_hops(next, dst) >= here {
                    return Check::Failed(format!(
                        "unproductive move {dir} at {cur} toward {dst} from a minimal function"
                    ));
                }
            }
        }
    }
    Check::Passed
}

fn check_channels(topo: &dyn Topology, routing: &dyn RoutingFunction) -> Check {
    let arrivals: Vec<Option<Direction>> = std::iter::once(None)
        .chain(Direction::all(topo.num_dims()).map(Some))
        .collect();
    for cur in 0..topo.num_nodes() {
        let cur = NodeId(cur as u32);
        for dst in 0..topo.num_nodes() {
            let dst = NodeId(dst as u32);
            for &arrived in &arrivals {
                // Only coherent arrival states (a channel into `cur`).
                if let Some(a) = arrived {
                    if topo.neighbor(cur, a.opposite()).is_none() {
                        continue;
                    }
                }
                for dir in routing.route(topo, cur, dst, arrived).iter() {
                    if topo.neighbor(cur, dir).is_none() {
                        return Check::Failed(format!(
                            "nonexistent channel {dir} offered at {cur} (dest {dst})"
                        ));
                    }
                }
            }
        }
    }
    Check::Passed
}

fn check_turns(topo: &dyn Topology, routing: &dyn RoutingFunction) -> Check {
    let Some(set) = routing.turn_set(topo.num_dims()) else {
        return Check::Skipped;
    };
    for cur in 0..topo.num_nodes() {
        let cur = NodeId(cur as u32);
        for dst in 0..topo.num_nodes() {
            let dst = NodeId(dst as u32);
            for arrived in Direction::all(topo.num_dims()) {
                if topo.neighbor(cur, arrived.opposite()).is_none() {
                    continue;
                }
                for out in routing.route(topo, cur, dst, Some(arrived)).iter() {
                    if !set.is_allowed(arrived, out) {
                        return Check::Failed(format!(
                            "move {arrived} -> {out} at {cur} is outside the declared turn set"
                        ));
                    }
                }
            }
        }
    }
    Check::Passed
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::{DirSet, Mesh};

    /// A minimal fully adaptive function: connected and minimal, but not
    /// deadlock free.
    struct FullyAdaptive;

    impl RoutingFunction for FullyAdaptive {
        fn name(&self) -> &str {
            "fully-adaptive"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            _arrived: Option<Direction>,
        ) -> DirSet {
            topo.productive_dirs(current, dest)
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    /// Deterministic xy for an all-green report.
    struct Xy;

    impl RoutingFunction for Xy {
        fn name(&self) -> &str {
            "xy"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            arrived: Option<Direction>,
        ) -> DirSet {
            let (c, d) = (topo.coord_of(current), topo.coord_of(dest));
            if c.get(0) != d.get(0) {
                if matches!(arrived, Some(a) if a.dim() == 1) {
                    return DirSet::empty(); // unreachable state
                }
                let sign = if d.get(0) > c.get(0) {
                    turnroute_topology::Sign::Plus
                } else {
                    turnroute_topology::Sign::Minus
                };
                return DirSet::single(Direction::new(0, sign));
            }
            if c.get(1) != d.get(1) {
                let sign = if d.get(1) > c.get(1) {
                    turnroute_topology::Sign::Plus
                } else {
                    turnroute_topology::Sign::Minus
                };
                let dir = Direction::new(1, sign);
                if arrived == Some(dir.opposite()) {
                    return DirSet::empty();
                }
                return DirSet::single(dir);
            }
            DirSet::empty()
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    /// A broken function: routes straight toward dest in x only, so pairs
    /// differing in y are undeliverable.
    struct XOnly;

    impl RoutingFunction for XOnly {
        fn name(&self) -> &str {
            "x-only"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            _arrived: Option<Direction>,
        ) -> DirSet {
            let (c, d) = (topo.coord_of(current), topo.coord_of(dest));
            if c.get(0) != d.get(0) {
                let sign = if d.get(0) > c.get(0) {
                    turnroute_topology::Sign::Plus
                } else {
                    turnroute_topology::Sign::Minus
                };
                DirSet::single(Direction::new(0, sign))
            } else {
                DirSet::empty()
            }
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    #[test]
    fn xy_passes_everything() {
        let mesh = Mesh::new_2d(5, 5);
        let report = verify(&mesh, &Xy);
        assert!(report.all_ok(), "{report}");
        assert_eq!(report.turns_consistent, Check::Skipped); // no turn set declared
        assert!(report.to_string().contains("deadlock-free: ok"));
    }

    #[test]
    fn fully_adaptive_fails_deadlock_only() {
        let mesh = Mesh::new_2d(4, 4);
        let report = verify(&mesh, &FullyAdaptive);
        assert!(!report.all_ok());
        assert!(matches!(report.deadlock_free, Check::Failed(_)));
        assert!(report.connected.is_ok());
        assert!(report.minimal.is_ok());
        assert!(report.channels_valid.is_ok());
        let text = report.to_string();
        assert!(text.contains("FAILED"), "{text}");
        assert!(text.contains("dependency cycle"), "{text}");
    }

    #[test]
    fn x_only_fails_connectivity() {
        let mesh = Mesh::new_2d(4, 4);
        let report = verify(&mesh, &XOnly);
        assert!(matches!(report.connected, Check::Failed(ref why) if why.contains("dead end")));
    }

    #[test]
    fn shipped_algorithms_pass() {
        // The real algorithms are verified end to end in the workspace
        // integration tests; here, spot-check the verifier against the
        // model-crate test double from the numbering module family.
        let mesh = Mesh::new_2d(4, 4);
        let report = verify(&mesh, &Xy);
        assert!(report.all_ok());
    }
}
