//! One-call verification of routing functions.
//!
//! Bundles every check this crate can run against a [`RoutingFunction`]
//! into a single report: deadlock freedom (channel dependency graph),
//! connectivity (every pair deliverable), minimality (distance strictly
//! decreases), channel validity (only existing channels offered), and
//! turn-set consistency (every move uses an allowed turn). Run it against
//! a custom algorithm before trusting it with a network.

use crate::{Cdg, RoutingFunction, TurnSet};
use turnroute_topology::{ChannelId, DirSet, Direction, FaultSet, NodeId, Topology};

/// The outcome of one verification check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Check {
    /// The check ran and passed.
    Passed,
    /// The check ran and failed, with an explanation.
    Failed(String),
    /// The check does not apply (e.g. minimality of a nonminimal
    /// function).
    Skipped,
}

impl Check {
    /// Whether this check is not a failure.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Check::Failed(_))
    }
}

/// A full verification report for a routing function on a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationReport {
    /// Name of the verified algorithm.
    pub algorithm: String,
    /// Channel dependency graph acyclicity (Dally–Seitz deadlock
    /// freedom). The failure message includes a witness cycle.
    pub deadlock_free: Check,
    /// Every ordered pair of nodes is deliverable by greedily following
    /// offered directions (worst-case direction choice).
    pub connected: Check,
    /// For minimal functions: every offered move reduces the distance to
    /// the destination.
    pub minimal: Check,
    /// A bounded-misroute potential function exists: the adversarial
    /// routing state graph is acyclic for every destination (see
    /// [`crate::livelock`]). This is the livelock-freedom check that
    /// covers nonminimal functions, for which `minimal` is skipped; the
    /// failure message contains a witness walk.
    pub progress: Check,
    /// Every offered direction corresponds to an existing channel.
    pub channels_valid: Check,
    /// Every move is allowed by the function's declared turn set (if it
    /// declares one).
    pub turns_consistent: Check,
}

impl VerificationReport {
    /// Whether every applicable check passed.
    pub fn all_ok(&self) -> bool {
        self.deadlock_free.is_ok()
            && self.connected.is_ok()
            && self.minimal.is_ok()
            && self.progress.is_ok()
            && self.channels_valid.is_ok()
            && self.turns_consistent.is_ok()
    }
}

impl std::fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "verification of {}:", self.algorithm)?;
        for (name, check) in [
            ("deadlock-free", &self.deadlock_free),
            ("connected", &self.connected),
            ("minimal", &self.minimal),
            ("progress", &self.progress),
            ("channels-valid", &self.channels_valid),
            ("turns-consistent", &self.turns_consistent),
        ] {
            match check {
                Check::Passed => writeln!(f, "  {name}: ok")?,
                Check::Skipped => writeln!(f, "  {name}: n/a")?,
                Check::Failed(why) => writeln!(f, "  {name}: FAILED — {why}")?,
            }
        }
        Ok(())
    }
}

/// Run every applicable check of `routing` on `topo`.
///
/// Runtime is roughly `O(nodes^2 * diameter)` for connectivity plus the
/// CDG construction; keep topologies modest (hundreds of nodes).
pub fn verify(topo: &dyn Topology, routing: &dyn RoutingFunction) -> VerificationReport {
    VerificationReport {
        algorithm: routing.name().to_string(),
        deadlock_free: check_deadlock(topo, routing),
        connected: check_connected(topo, routing),
        minimal: check_minimal(topo, routing),
        progress: crate::livelock::check_progress(topo, routing).bounded,
        channels_valid: check_channels(topo, routing),
        turns_consistent: check_turns(topo, routing),
    }
}

fn check_deadlock(topo: &dyn Topology, routing: &dyn RoutingFunction) -> Check {
    let cdg = Cdg::from_routing(topo, routing);
    match cdg.find_cycle() {
        None => Check::Passed,
        Some(cycle) => {
            let shown: Vec<String> = cycle
                .iter()
                .take(6)
                .map(|&c: &ChannelId| cdg.channels()[c.index()].to_string())
                .collect();
            Check::Failed(format!(
                "dependency cycle of {} channels: {}{}",
                cycle.len(),
                shown.join(" -> "),
                if cycle.len() > 6 { " -> ..." } else { "" }
            ))
        }
    }
}

/// Greedy worst-case walk: always take the *last* offered direction, a
/// simple adversarial choice. For minimal coherent functions this still
/// reaches the destination in exactly `min_hops` steps; bounded walk
/// length catches livelocks and dead ends.
fn check_connected(topo: &dyn Topology, routing: &dyn RoutingFunction) -> Check {
    let limit = 8 * (topo.num_nodes() + 8);
    for s in 0..topo.num_nodes() {
        for d in 0..topo.num_nodes() {
            if s == d {
                continue;
            }
            let (src, dst) = (NodeId(s as u32), NodeId(d as u32));
            let mut cur = src;
            let mut arrived: Option<Direction> = None;
            let mut hops = 0usize;
            while cur != dst {
                let dirs = routing.route(topo, cur, dst, arrived);
                let Some(dir) = dirs.iter().last() else {
                    return Check::Failed(format!(
                        "dead end at {cur} routing {src} -> {dst} (arrived {arrived:?})"
                    ));
                };
                let Some(next) = topo.neighbor(cur, dir) else {
                    return Check::Failed(format!(
                        "nonexistent channel {dir} offered at {cur} for {src} -> {dst}"
                    ));
                };
                cur = next;
                arrived = Some(dir);
                hops += 1;
                if hops > limit {
                    return Check::Failed(format!(
                        "walk {src} -> {dst} exceeded {limit} hops (livelock?)"
                    ));
                }
            }
        }
    }
    Check::Passed
}

fn check_minimal(topo: &dyn Topology, routing: &dyn RoutingFunction) -> Check {
    if !routing.is_minimal() {
        return Check::Skipped;
    }
    for cur in 0..topo.num_nodes() {
        let cur = NodeId(cur as u32);
        for dst in 0..topo.num_nodes() {
            let dst = NodeId(dst as u32);
            if cur == dst {
                continue;
            }
            let here = topo.min_hops(cur, dst);
            for dir in routing.route(topo, cur, dst, None).iter() {
                let Some(next) = topo.neighbor(cur, dir) else {
                    continue; // reported by channels_valid
                };
                if topo.min_hops(next, dst) >= here {
                    return Check::Failed(format!(
                        "unproductive move {dir} at {cur} toward {dst} from a minimal function"
                    ));
                }
            }
        }
    }
    Check::Passed
}

fn check_channels(topo: &dyn Topology, routing: &dyn RoutingFunction) -> Check {
    let arrivals: Vec<Option<Direction>> = std::iter::once(None)
        .chain(Direction::all(topo.num_dims()).map(Some))
        .collect();
    for cur in 0..topo.num_nodes() {
        let cur = NodeId(cur as u32);
        for dst in 0..topo.num_nodes() {
            let dst = NodeId(dst as u32);
            for &arrived in &arrivals {
                // Only coherent arrival states (a channel into `cur`).
                if let Some(a) = arrived {
                    if topo.neighbor(cur, a.opposite()).is_none() {
                        continue;
                    }
                }
                for dir in routing.route(topo, cur, dst, arrived).iter() {
                    if topo.neighbor(cur, dir).is_none() {
                        return Check::Failed(format!(
                            "nonexistent channel {dir} offered at {cur} (dest {dst})"
                        ));
                    }
                }
            }
        }
    }
    Check::Passed
}

fn check_turns(topo: &dyn Topology, routing: &dyn RoutingFunction) -> Check {
    let Some(set) = routing.turn_set(topo.num_dims()) else {
        return Check::Skipped;
    };
    for cur in 0..topo.num_nodes() {
        let cur = NodeId(cur as u32);
        for dst in 0..topo.num_nodes() {
            let dst = NodeId(dst as u32);
            for arrived in Direction::all(topo.num_dims()) {
                if topo.neighbor(cur, arrived.opposite()).is_none() {
                    continue;
                }
                for out in routing.route(topo, cur, dst, Some(arrived)).iter() {
                    if !set.is_allowed(arrived, out) {
                        return Check::Failed(format!(
                            "move {arrived} -> {out} at {cur} is outside the declared turn set"
                        ));
                    }
                }
            }
        }
    }
    Check::Passed
}

/// Verification of a routing function operating under a fault pattern.
///
/// Built by [`verify_under_faults`]. Under faults, full connectivity is not
/// expected — the network may be partitioned — so reachability is reported
/// as a census rather than a pass/fail check. Deadlock freedom, however,
/// must survive *every* fault pattern: filtering a turn set's outputs (and
/// misrouting along still-allowed turns) only removes channel-dependency
/// edges, so the faulted CDG stays a subgraph of the fault-free one.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultVerification {
    /// Name of the verified algorithm.
    pub algorithm: String,
    /// Channels failed in the pattern this report covers.
    pub failed_links: usize,
    /// Nodes failed in the pattern this report covers.
    pub failed_nodes: usize,
    /// Acyclicity of the CDG induced by the fault-masked routing function
    /// (including its misroute-around-fault fallback moves).
    pub deadlock_free: Check,
    /// Livelock freedom of the masked relation: even with the misroute
    /// fallback active, the adversarial routing state graph stays acyclic,
    /// so every detour around the fault pattern is bounded (see
    /// [`crate::livelock`]).
    pub progress: Check,
    /// Ordered pairs a greedy worst-case walk still delivers.
    pub reachable_pairs: usize,
    /// Ordered pairs that dead-end, livelock, or touch a failed node.
    pub unreachable_pairs: usize,
}

impl FaultVerification {
    /// Whether the surviving routing relation is deadlock free and
    /// livelock free.
    pub fn all_ok(&self) -> bool {
        self.deadlock_free.is_ok() && self.progress.is_ok()
    }
}

impl std::fmt::Display for FaultVerification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fault verification of {} ({} links, {} nodes failed):",
            self.algorithm, self.failed_links, self.failed_nodes
        )?;
        for (name, check) in [
            ("deadlock-free", &self.deadlock_free),
            ("progress", &self.progress),
        ] {
            match check {
                Check::Passed => writeln!(f, "  {name}: ok")?,
                Check::Skipped => writeln!(f, "  {name}: n/a")?,
                Check::Failed(why) => writeln!(f, "  {name}: FAILED — {why}")?,
            }
        }
        writeln!(
            f,
            "  reachable pairs: {} of {}",
            self.reachable_pairs,
            self.reachable_pairs + self.unreachable_pairs
        )
    }
}

/// A routing function masked by a fault pattern, mirroring the simulator's
/// fault-aware candidate selection: offered directions crossing a failed
/// link or into a failed node are removed; if that empties the set and the
/// inner function declares a turn set, the fallback offers every
/// turn-legal healthy direction (a misroute around the fault).
///
/// All outputs — primary and fallback — are filtered through the declared
/// turn set, so the induced CDG is a subgraph of the turn set's CDG and
/// inherits its acyclicity.
///
/// The struct is public so external analyses (notably the `turnprove`
/// channel-graph extraction in the analysis crate) can reason about
/// *exactly* the relation the verifier checks, instead of re-deriving a
/// slightly different fault masking of their own.
pub struct FaultMasked<'a> {
    inner: &'a dyn RoutingFunction,
    faults: &'a FaultSet,
    turns: Option<TurnSet>,
    name: String,
}

impl<'a> FaultMasked<'a> {
    /// Mask `inner` by `faults` on `topo`. The turn set is resolved once,
    /// against `topo.num_dims()`.
    pub fn new(topo: &dyn Topology, inner: &'a dyn RoutingFunction, faults: &'a FaultSet) -> Self {
        FaultMasked {
            turns: inner.turn_set(topo.num_dims()),
            name: format!("{}+faults", inner.name()),
            inner,
            faults,
        }
    }

    fn healthy(&self, topo: &dyn Topology, current: NodeId, dir: Direction) -> bool {
        match topo.neighbor(current, dir) {
            Some(next) => {
                !self.faults.link_failed(topo.channel_slot(current, dir))
                    && !self.faults.node_failed(next)
            }
            None => false,
        }
    }
}

impl RoutingFunction for FaultMasked<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        if self.faults.node_failed(current) {
            return DirSet::empty();
        }
        if let Some(a) = arrived {
            // A packet cannot occupy a failed input channel, so states that
            // arrive on one are vacuous — excluding them removes their CDG
            // edges.
            match topo.neighbor(current, a.opposite()) {
                Some(prev) if !self.faults.link_failed(topo.channel_slot(prev, a)) => {}
                _ => return DirSet::empty(),
            }
        }
        let legal = match &self.turns {
            Some(set) => set.legal_outputs(arrived),
            None => DirSet::all(topo.num_dims()),
        };
        let primary: DirSet = self
            .inner
            .route(topo, current, dest, arrived)
            .intersection(legal)
            .iter()
            .filter(|&d| self.healthy(topo, current, d))
            .collect();
        if !primary.is_empty() || self.turns.is_none() {
            return primary;
        }
        // Misroute-around-fault fallback: any turn-legal healthy direction.
        legal
            .iter()
            .filter(|&d| self.healthy(topo, current, d))
            .collect()
    }

    fn is_minimal(&self) -> bool {
        false // fallback misroutes
    }

    fn turn_set(&self, num_dims: usize) -> Option<TurnSet> {
        self.inner.turn_set(num_dims)
    }
}

/// Verify `routing` on `topo` under the fault pattern `faults`.
///
/// Checks that the channel dependency graph induced by the fault-masked
/// routing relation (primary routes and misroute fallbacks, both filtered
/// through the declared turn set) remains acyclic, and censuses which
/// ordered node pairs a greedy worst-case walk still delivers. Partition is
/// reported, not failed: only a dependency cycle makes `all_ok()` false.
pub fn verify_under_faults(
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    faults: &FaultSet,
) -> FaultVerification {
    let masked = FaultMasked::new(topo, routing, faults);
    let deadlock_free = check_deadlock(topo, &masked);
    let progress = crate::livelock::check_progress(topo, &masked).bounded;
    let (reachable, unreachable) = fault_reachability(topo, &masked, faults);
    FaultVerification {
        algorithm: routing.name().to_string(),
        failed_links: faults.failed_link_count(),
        failed_nodes: faults.failed_node_count(),
        deadlock_free,
        progress,
        reachable_pairs: reachable,
        unreachable_pairs: unreachable,
    }
}

/// Greedy worst-case walk census under faults: unlike [`check_connected`],
/// dead ends and over-long walks are tallied, not fatal — a faulted network
/// may legitimately be partitioned.
fn fault_reachability(
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    faults: &FaultSet,
) -> (usize, usize) {
    let limit = 8 * (topo.num_nodes() + 8);
    let (mut reachable, mut unreachable) = (0usize, 0usize);
    for s in 0..topo.num_nodes() {
        for d in 0..topo.num_nodes() {
            if s == d {
                continue;
            }
            let (src, dst) = (NodeId(s as u32), NodeId(d as u32));
            if faults.node_failed(src) || faults.node_failed(dst) {
                unreachable += 1;
                continue;
            }
            let mut cur = src;
            let mut arrived: Option<Direction> = None;
            let mut hops = 0usize;
            let delivered = loop {
                if cur == dst {
                    break true;
                }
                let dirs = routing.route(topo, cur, dst, arrived);
                let Some(dir) = dirs.iter().last() else {
                    break false;
                };
                cur = topo.neighbor(cur, dir).expect("offered channel exists");
                arrived = Some(dir);
                hops += 1;
                if hops > limit {
                    break false;
                }
            };
            if delivered {
                reachable += 1;
            } else {
                unreachable += 1;
            }
        }
    }
    (reachable, unreachable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::Mesh;

    /// A minimal fully adaptive function: connected and minimal, but not
    /// deadlock free.
    struct FullyAdaptive;

    impl RoutingFunction for FullyAdaptive {
        fn name(&self) -> &str {
            "fully-adaptive"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            _arrived: Option<Direction>,
        ) -> DirSet {
            topo.productive_dirs(current, dest)
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    /// Deterministic xy for an all-green report.
    struct Xy;

    impl RoutingFunction for Xy {
        fn name(&self) -> &str {
            "xy"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            arrived: Option<Direction>,
        ) -> DirSet {
            let (c, d) = (topo.coord_of(current), topo.coord_of(dest));
            if c.get(0) != d.get(0) {
                if matches!(arrived, Some(a) if a.dim() == 1) {
                    return DirSet::empty(); // unreachable state
                }
                let sign = if d.get(0) > c.get(0) {
                    turnroute_topology::Sign::Plus
                } else {
                    turnroute_topology::Sign::Minus
                };
                return DirSet::single(Direction::new(0, sign));
            }
            if c.get(1) != d.get(1) {
                let sign = if d.get(1) > c.get(1) {
                    turnroute_topology::Sign::Plus
                } else {
                    turnroute_topology::Sign::Minus
                };
                let dir = Direction::new(1, sign);
                if arrived == Some(dir.opposite()) {
                    return DirSet::empty();
                }
                return DirSet::single(dir);
            }
            DirSet::empty()
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    /// A broken function: routes straight toward dest in x only, so pairs
    /// differing in y are undeliverable.
    struct XOnly;

    impl RoutingFunction for XOnly {
        fn name(&self) -> &str {
            "x-only"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            _arrived: Option<Direction>,
        ) -> DirSet {
            let (c, d) = (topo.coord_of(current), topo.coord_of(dest));
            if c.get(0) != d.get(0) {
                let sign = if d.get(0) > c.get(0) {
                    turnroute_topology::Sign::Plus
                } else {
                    turnroute_topology::Sign::Minus
                };
                DirSet::single(Direction::new(0, sign))
            } else {
                DirSet::empty()
            }
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    #[test]
    fn xy_passes_everything() {
        let mesh = Mesh::new_2d(5, 5);
        let report = verify(&mesh, &Xy);
        assert!(report.all_ok(), "{report}");
        assert_eq!(report.turns_consistent, Check::Skipped); // no turn set declared
        assert!(report.to_string().contains("deadlock-free: ok"));
    }

    #[test]
    fn fully_adaptive_fails_deadlock_only() {
        let mesh = Mesh::new_2d(4, 4);
        let report = verify(&mesh, &FullyAdaptive);
        assert!(!report.all_ok());
        assert!(matches!(report.deadlock_free, Check::Failed(_)));
        assert!(report.connected.is_ok());
        assert!(report.minimal.is_ok());
        assert!(report.channels_valid.is_ok());
        let text = report.to_string();
        assert!(text.contains("FAILED"), "{text}");
        assert!(text.contains("dependency cycle"), "{text}");
    }

    #[test]
    fn x_only_fails_connectivity() {
        let mesh = Mesh::new_2d(4, 4);
        let report = verify(&mesh, &XOnly);
        assert!(matches!(report.connected, Check::Failed(ref why) if why.contains("dead end")));
    }

    /// West-first as a turn-set-declaring minimal adaptive function, for
    /// fault verification without depending on the routing crate.
    struct WestFirstLike;

    impl RoutingFunction for WestFirstLike {
        fn name(&self) -> &str {
            "west-first-like"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            _arrived: Option<Direction>,
        ) -> DirSet {
            let productive = topo.productive_dirs(current, dest);
            // If west is productive it must be taken first; otherwise route
            // fully adaptively among the remaining productive directions.
            if productive.contains(Direction::WEST) {
                DirSet::single(Direction::WEST)
            } else {
                productive
            }
        }

        fn is_minimal(&self) -> bool {
            true
        }

        fn turn_set(&self, num_dims: usize) -> Option<TurnSet> {
            (num_dims == 2).then(crate::presets::west_first_turns)
        }
    }

    #[test]
    fn healthy_fault_verification_reaches_everything() {
        let mesh = Mesh::new_2d(5, 5);
        let faults = FaultSet::new(&mesh);
        let report = verify_under_faults(&mesh, &WestFirstLike, &faults);
        assert!(report.all_ok(), "{report}");
        assert_eq!(report.unreachable_pairs, 0);
        assert_eq!(report.reachable_pairs, 25 * 24);
    }

    #[test]
    fn single_link_fault_stays_deadlock_free_and_connected() {
        let mesh = Mesh::new_2d(5, 5);
        let mut faults = FaultSet::new(&mesh);
        // An eastward link failure: west-first can always route around it.
        faults.fail_link(&mesh, mesh.node_at_coords(&[2, 2]), Direction::EAST);
        let report = verify_under_faults(&mesh, &WestFirstLike, &faults);
        assert!(report.all_ok(), "{report}");
        assert_eq!(report.failed_links, 1);
        assert!(report.to_string().contains("deadlock-free: ok"));
    }

    #[test]
    fn node_fault_partitions_but_stays_deadlock_free() {
        let mesh = Mesh::new_2d(4, 4);
        let mut faults = FaultSet::new(&mesh);
        faults.fail_node(&mesh, mesh.node_at_coords(&[1, 1]));
        let report = verify_under_faults(&mesh, &WestFirstLike, &faults);
        // Pairs touching the dead node are unreachable; the survivors'
        // dependency graph must still be acyclic.
        assert!(report.all_ok(), "{report}");
        assert!(report.unreachable_pairs >= 2 * 15);
        assert_eq!(
            report.reachable_pairs + report.unreachable_pairs,
            16 * 15,
            "{report}"
        );
    }

    #[test]
    fn shipped_algorithms_pass() {
        // The real algorithms are verified end to end in the workspace
        // integration tests; here, spot-check the verifier against the
        // model-crate test double from the numbering module family.
        let mesh = Mesh::new_2d(4, 4);
        let report = verify(&mesh, &Xy);
        assert!(report.all_ok());
    }
}
