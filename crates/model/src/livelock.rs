//! Progress (livelock-freedom) analysis: proving a bounded-misroute
//! potential function exists for a routing function.
//!
//! The paper requires routing algorithms to be both deadlock free *and*
//! livelock free. For minimal functions livelock freedom is immediate —
//! every hop strictly decreases the distance to the destination, so the
//! distance itself is the potential function. For *nonminimal* functions
//! (the `two_phase` wander modes, the fault-aware misroute fallback) no
//! such one-liner applies, and the verifier historically just skipped the
//! question.
//!
//! This module closes that gap mechanically. Fix a destination `d` and
//! consider the **routing state graph**: states are `(node, arrival)`
//! pairs a packet headed for `d` can occupy, and there is an edge for
//! every direction the routing function offers, whichever the adversary
//! (traffic, arbitration) makes the packet take. If this graph is
//! **acyclic** for every destination, its topological order *is* a
//! potential function: every hop strictly decreases it, so any packet
//! reaches `d` within a bounded number of hops, misrouting included —
//! livelock is impossible no matter how unluckily channels are granted.
//! The analysis also extracts the **intrinsic misroute bound**: the
//! maximum number of unproductive hops on any path of the (acyclic)
//! state graph, which is the worst case any packet can suffer.
//!
//! The connection to deadlock freedom is the same one the paper exploits:
//! a cycle of states maps onto a cycle of channel dependencies, so a
//! routing relation whose channel dependency graph is acyclic can never
//! livelock an individual packet either. Running the check directly (per
//! destination, over reachable states only) both validates that argument
//! end to end and produces a concrete witness walk when it fails.

use crate::verifier::Check;
use crate::RoutingFunction;
use turnroute_topology::{Direction, NodeId, Topology};

/// Outcome of the progress analysis of one routing function.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressReport {
    /// Name of the analyzed algorithm.
    pub algorithm: String,
    /// Whether a bounded-misroute potential function exists (the
    /// adversarial routing state graph is acyclic for every destination).
    /// The failure message contains a witness walk that revisits a state.
    pub bounded: Check,
    /// The intrinsic misroute bound: the maximum number of unproductive
    /// hops on any adversarial path, over all source/destination pairs.
    /// Zero for minimal functions. Meaningful only when `bounded` passed.
    pub max_misroutes: usize,
}

/// One offered move out of a routing state.
#[derive(Debug, Clone, Copy)]
struct Edge {
    /// Target state, or `None` when the move delivers to the destination.
    to: Option<usize>,
    /// The direction taken (for witness printing).
    dir: Direction,
    /// Whether the move fails to decrease `min_hops` to the destination.
    unproductive: bool,
}

const WHITE: u8 = 0;
const GRAY: u8 = 1;
const BLACK: u8 = 2;

/// Prove (or refute) that `routing` admits a bounded-misroute potential
/// function on `topo`.
///
/// Explores, per destination, every state `(node, arrival)` reachable
/// under adversarial choices among the offered directions. Runtime is
/// `O(nodes^2 · directions^2)` — the same ballpark as the verifier's
/// connectivity walk.
pub fn check_progress(topo: &dyn Topology, routing: &dyn RoutingFunction) -> ProgressReport {
    let n = topo.num_nodes();
    let num_arr = 2 * topo.num_dims() + 1;
    let num_states = n * num_arr;
    // Offered directions can't escape the topology's direction set, so a
    // state is (node, arrival code); code 0 is "freshly injected".
    let state_of = |v: NodeId, arr: Option<Direction>| -> usize {
        v.index() * num_arr + arr.map_or(0, |a| 1 + a.index())
    };
    let show = |s: usize| -> String {
        let v = NodeId((s / num_arr) as u32);
        match s % num_arr {
            0 => format!("{v}[injected]"),
            c => format!("{v}[arrived {}]", Direction::from_index(c - 1)),
        }
    };

    let mut max_misroutes = 0usize;
    let mut color = vec![WHITE; num_states];
    // Max unproductive hops on any path out of a finished state.
    let mut worst = vec![0u32; num_states];
    let mut edges: Vec<Option<Vec<Edge>>> = vec![None; num_states];
    // DFS stack of (state, next edge index to explore).
    let mut stack: Vec<(usize, usize)> = Vec::new();

    for dest in (0..n).map(|d| NodeId(d as u32)) {
        color.iter_mut().for_each(|c| *c = WHITE);
        worst.iter_mut().for_each(|w| *w = 0);
        edges.iter_mut().for_each(|e| *e = None);
        let here = |v: NodeId| topo.min_hops(v, dest);

        for src in (0..n).map(|s| NodeId(s as u32)) {
            if src == dest || color[state_of(src, None)] != WHITE {
                continue;
            }
            stack.clear();
            stack.push((state_of(src, None), 0));
            color[state_of(src, None)] = GRAY;
            while let Some(&mut (s, ref mut next)) = stack.last_mut() {
                if edges[s].is_none() {
                    let v = NodeId((s / num_arr) as u32);
                    let arr = match s % num_arr {
                        0 => None,
                        c => Some(Direction::from_index(c - 1)),
                    };
                    let mut out = Vec::new();
                    for dir in routing.route(topo, v, dest, arr).iter() {
                        let Some(u) = topo.neighbor(v, dir) else {
                            continue; // reported by the channels-valid check
                        };
                        out.push(Edge {
                            to: (u != dest).then(|| state_of(u, Some(dir))),
                            dir,
                            unproductive: here(u) >= here(v),
                        });
                    }
                    edges[s] = Some(out);
                }
                let outs = edges[s].as_ref().expect("computed above");
                let Some(&e) = outs.get(*next) else {
                    // Finished: fold children into the misroute bound.
                    let w = outs
                        .iter()
                        .map(|e| u32::from(e.unproductive) + e.to.map_or(0, |t| worst[t]))
                        .max()
                        .unwrap_or(0);
                    worst[s] = w;
                    max_misroutes = max_misroutes.max(w as usize);
                    color[s] = BLACK;
                    stack.pop();
                    continue;
                };
                *next += 1;
                let Some(t) = e.to else { continue };
                match color[t] {
                    WHITE => {
                        color[t] = GRAY;
                        stack.push((t, 0));
                    }
                    GRAY => {
                        // A reachable state repeats: the adversary can loop
                        // this walk forever. Reconstruct it from the stack.
                        let pos = stack
                            .iter()
                            .position(|&(fs, _)| fs == t)
                            .expect("gray state is on the stack");
                        let mut walk = String::new();
                        for &(fs, fnext) in &stack[pos..] {
                            let taken = edges[fs].as_ref().expect("visited")[fnext - 1];
                            walk.push_str(&format!("{} --{}--> ", show(fs), taken.dir));
                        }
                        walk.push_str(&format!("{} (revisited)", show(t)));
                        return ProgressReport {
                            algorithm: routing.name().to_string(),
                            bounded: Check::Failed(format!(
                                "routing to {dest} admits an unbounded adversarial walk: {walk}"
                            )),
                            max_misroutes: 0,
                        };
                    }
                    _ => {}
                }
            }
        }
    }

    ProgressReport {
        algorithm: routing.name().to_string(),
        bounded: Check::Passed,
        max_misroutes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::{DirSet, Mesh};

    /// Minimal fully adaptive: livelock free by the distance argument.
    struct MinimalAdaptive;

    impl RoutingFunction for MinimalAdaptive {
        fn name(&self) -> &str {
            "minimal-adaptive"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            _arrived: Option<Direction>,
        ) -> DirSet {
            topo.productive_dirs(current, dest)
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    /// Offers every direction everywhere: the adversary can walk any
    /// cycle of the mesh forever.
    struct Wanderer;

    impl RoutingFunction for Wanderer {
        fn name(&self) -> &str {
            "wanderer"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            _dest: NodeId,
            _arrived: Option<Direction>,
        ) -> DirSet {
            Direction::all(topo.num_dims())
                .filter(|&d| topo.neighbor(current, d).is_some())
                .collect()
        }

        fn is_minimal(&self) -> bool {
            false
        }
    }

    #[test]
    fn minimal_function_has_zero_misroute_bound() {
        let mesh = Mesh::new_2d(5, 5);
        let report = check_progress(&mesh, &MinimalAdaptive);
        assert_eq!(report.bounded, Check::Passed);
        assert_eq!(report.max_misroutes, 0);
    }

    #[test]
    fn unrestricted_wandering_is_flagged_with_a_witness() {
        let mesh = Mesh::new_2d(3, 3);
        let report = check_progress(&mesh, &Wanderer);
        let Check::Failed(why) = &report.bounded else {
            panic!("wanderer must fail progress: {report:?}");
        };
        assert!(why.contains("revisited"), "{why}");
        assert!(why.contains("-->"), "{why}");
    }
}
