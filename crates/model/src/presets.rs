//! The turn sets of the paper's named routing algorithms.
//!
//! Dimension conventions follow the paper: in 2D, dimension 0 is *x*
//! (west = −x, east = +x) and dimension 1 is *y* (south = −y,
//! north = +y).

use crate::{Turn, TurnSet};
use turnroute_topology::{Direction, Sign};

/// The xy (dimension-order) turn set for 2D meshes (Figure 3): only the
/// four turns from the x dimension into the y dimension are allowed, which
/// prevents deadlock but permits no adaptiveness.
pub fn xy_turns() -> TurnSet {
    dimension_order_turns(2)
}

/// The dimension-order (e-cube generalization) turn set for `n` dimensions:
/// turns are allowed only from a lower dimension to a strictly higher one.
pub fn dimension_order_turns(num_dims: usize) -> TurnSet {
    let mut set = TurnSet::no_turns(num_dims);
    for t in Turn::all_ninety(num_dims) {
        if t.from_dir().dim() < t.to_dir().dim() {
            set.allow(t);
        }
    }
    set
}

/// The west-first turn set (Figure 5a): the two turns *to the west* are
/// prohibited, so a packet must travel west, if at all, before anything
/// else. Six of the eight 90-degree turns remain.
pub fn west_first_turns() -> TurnSet {
    let mut set = TurnSet::all_ninety(2);
    set.prohibit(Turn::new(Direction::NORTH, Direction::WEST));
    set.prohibit(Turn::new(Direction::SOUTH, Direction::WEST));
    set
}

/// The north-last turn set (Figure 9a): the two turns *when traveling
/// north* are prohibited, so a packet travels north only as its final
/// direction.
pub fn north_last_turns() -> TurnSet {
    let mut set = TurnSet::all_ninety(2);
    set.prohibit(Turn::new(Direction::NORTH, Direction::WEST));
    set.prohibit(Turn::new(Direction::NORTH, Direction::EAST));
    set
}

/// The negative-first turn set for `n` dimensions (Figure 10a in 2D,
/// Section 4.1 in general): every turn from a positive direction to a
/// negative direction is prohibited — exactly `n(n-1)` turns, the minimum
/// of Theorem 6.
pub fn negative_first_turns(num_dims: usize) -> TurnSet {
    let mut set = TurnSet::all_ninety(num_dims);
    for t in Turn::all_ninety(num_dims) {
        if t.from_dir().sign() == Sign::Plus && t.to_dir().sign() == Sign::Minus {
            set.prohibit(t);
        }
    }
    set
}

/// The all-but-one-negative-first turn set (Section 4.1), the n-dimensional
/// analog of west-first. Phase 1 directions are the negative directions of
/// all dimensions except the last (`0..n-1`); phase 2 directions are the
/// rest. Turns from a phase-2 direction into a phase-1 direction are
/// prohibited — again `n(n-1)` turns.
///
/// For `n = 2`, phase 1 is `{west}` and this reduces to
/// [`west_first_turns`].
pub fn all_but_one_negative_first_turns(num_dims: usize) -> TurnSet {
    let phase1 = |d: Direction| d.sign() == Sign::Minus && d.dim() < num_dims - 1;
    let mut set = TurnSet::all_ninety(num_dims);
    for t in Turn::all_ninety(num_dims) {
        if !phase1(t.from_dir()) && phase1(t.to_dir()) {
            set.prohibit(t);
        }
    }
    set
}

/// The all-but-one-positive-last turn set (Section 4.1), the n-dimensional
/// analog of north-last. Phase 2 directions are the positive directions of
/// all dimensions except dimension 0; a packet travels them only at the
/// end, so turns from a phase-2 direction back into a phase-1 direction
/// (the negatives plus `+0`) are prohibited — `n(n-1)` turns.
///
/// For `n = 2`, phase 2 is `{north}` and this reduces to
/// [`north_last_turns`].
pub fn all_but_one_positive_last_turns(num_dims: usize) -> TurnSet {
    let phase2 = |d: Direction| d.sign() == Sign::Plus && d.dim() >= 1;
    let mut set = TurnSet::all_ninety(num_dims);
    for t in Turn::all_ninety(num_dims) {
        if phase2(t.from_dir()) && !phase2(t.to_dir()) {
            set.prohibit(t);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::breaks_all_abstract_cycles;
    use crate::Cdg;
    use turnroute_topology::Mesh;

    #[test]
    fn xy_allows_exactly_four_turns() {
        let set = xy_turns();
        assert_eq!(set.allowed_ninety().len(), 4);
        // The four allowed turns all go from x travel to y travel.
        for t in set.allowed_ninety() {
            assert_eq!(t.from_dir().dim(), 0);
            assert_eq!(t.to_dir().dim(), 1);
        }
    }

    #[test]
    fn partially_adaptive_sets_prohibit_exactly_two_in_2d() {
        for set in [
            west_first_turns(),
            north_last_turns(),
            negative_first_turns(2),
        ] {
            assert_eq!(set.prohibited_ninety().len(), 2);
            assert_eq!(set.allowed_ninety().len(), 6);
        }
    }

    #[test]
    fn west_first_prohibits_turns_to_west() {
        let set = west_first_turns();
        for t in set.prohibited_ninety() {
            assert_eq!(t.to_dir(), Direction::WEST);
        }
    }

    #[test]
    fn north_last_prohibits_turns_from_north() {
        let set = north_last_turns();
        for t in set.prohibited_ninety() {
            assert_eq!(t.from_dir(), Direction::NORTH);
        }
    }

    #[test]
    fn negative_first_prohibits_quarter_of_turns() {
        // Theorem 6: exactly n(n-1) turns prohibited, a quarter of 4n(n-1).
        for n in 2..=6 {
            let set = negative_first_turns(n);
            assert_eq!(set.prohibited_ninety().len(), n * (n - 1));
        }
    }

    #[test]
    fn abonf_abopl_prohibit_quarter_of_turns() {
        for n in 2..=6 {
            assert_eq!(
                all_but_one_negative_first_turns(n)
                    .prohibited_ninety()
                    .len(),
                n * (n - 1),
                "ABONF n={n}"
            );
            assert_eq!(
                all_but_one_positive_last_turns(n).prohibited_ninety().len(),
                n * (n - 1),
                "ABOPL n={n}"
            );
        }
    }

    #[test]
    fn abonf_reduces_to_west_first_in_2d() {
        assert_eq!(all_but_one_negative_first_turns(2), west_first_turns());
    }

    #[test]
    fn abopl_reduces_to_north_last_in_2d() {
        assert_eq!(all_but_one_positive_last_turns(2), north_last_turns());
    }

    #[test]
    fn all_presets_break_all_abstract_cycles() {
        for n in 2..=4 {
            assert!(breaks_all_abstract_cycles(&dimension_order_turns(n)));
            assert!(breaks_all_abstract_cycles(&negative_first_turns(n)));
            assert!(breaks_all_abstract_cycles(
                &all_but_one_negative_first_turns(n)
            ));
            assert!(breaks_all_abstract_cycles(
                &all_but_one_positive_last_turns(n)
            ));
        }
    }

    #[test]
    fn all_presets_have_acyclic_cdgs_3d() {
        let mesh = Mesh::new(vec![3, 3, 3]);
        for set in [
            dimension_order_turns(3),
            negative_first_turns(3),
            all_but_one_negative_first_turns(3),
            all_but_one_positive_last_turns(3),
        ] {
            assert!(
                Cdg::from_turn_set(&mesh, &set).is_acyclic(),
                "cyclic CDG for {set}"
            );
        }
    }
}
