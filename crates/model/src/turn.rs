//! Turns: transitions between travel directions.

use turnroute_topology::Direction;

/// The geometric kind of a turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TurnKind {
    /// Continuing in the same direction — not really a turn. (A 0-degree
    /// turn between distinct *virtual* directions only arises when a
    /// physical direction has multiple channels, which the paper's target
    /// networks do not.)
    Straight,
    /// A 90-degree turn: the dimension of travel changes.
    Ninety,
    /// A 180-degree reversal: same dimension, opposite sign. Only useful
    /// for nonminimal routing.
    OneEighty,
}

/// A turn from one direction of travel to another.
///
/// The turn model analyzes which turns a routing algorithm permits; in an
/// *n*-dimensional mesh there are `4n(n-1)` possible 90-degree turns
/// (Section 2 of the paper).
///
/// # Example
///
/// ```
/// use turnroute_model::{Turn, TurnKind};
/// use turnroute_topology::Direction;
///
/// let t = Turn::new(Direction::NORTH, Direction::WEST);
/// assert_eq!(t.kind(), TurnKind::Ninety);
/// assert_eq!(t.to_string(), "north->west");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Turn {
    from: Direction,
    to: Direction,
}

impl Turn {
    /// Create a turn from `from` to `to`.
    pub fn new(from: Direction, to: Direction) -> Turn {
        Turn { from, to }
    }

    /// The direction of travel before the turn.
    #[inline]
    pub fn from_dir(self) -> Direction {
        self.from
    }

    /// The direction of travel after the turn.
    #[inline]
    pub fn to_dir(self) -> Direction {
        self.to
    }

    /// The geometric kind of this turn.
    pub fn kind(self) -> TurnKind {
        if self.from == self.to {
            TurnKind::Straight
        } else if self.from.dim() == self.to.dim() {
            TurnKind::OneEighty
        } else {
            TurnKind::Ninety
        }
    }

    /// The reverse turn (`to -> from`).
    pub fn reversed(self) -> Turn {
        Turn {
            from: self.to,
            to: self.from,
        }
    }

    /// Enumerate all `4n(n-1)` 90-degree turns of an `n`-dimensional
    /// network, in a stable order.
    pub fn all_ninety(num_dims: usize) -> Vec<Turn> {
        let mut out = Vec::with_capacity(4 * num_dims * num_dims.saturating_sub(1));
        for from in Direction::all(num_dims) {
            for to in Direction::all(num_dims) {
                if from.dim() != to.dim() {
                    out.push(Turn::new(from, to));
                }
            }
        }
        out
    }

    /// Enumerate all `2n` 180-degree turns of an `n`-dimensional network.
    pub fn all_one_eighty(num_dims: usize) -> Vec<Turn> {
        Direction::all(num_dims)
            .map(|d| Turn::new(d, d.opposite()))
            .collect()
    }
}

impl std::fmt::Display for Turn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::Sign;

    #[test]
    fn turn_kinds() {
        let east = Direction::EAST;
        assert_eq!(Turn::new(east, east).kind(), TurnKind::Straight);
        assert_eq!(Turn::new(east, Direction::WEST).kind(), TurnKind::OneEighty);
        assert_eq!(Turn::new(east, Direction::NORTH).kind(), TurnKind::Ninety);
    }

    #[test]
    fn ninety_turn_count_matches_theorem_1_setup() {
        // 4n(n-1) turns in an n-dimensional mesh (Section 2).
        for n in 2..=6 {
            assert_eq!(Turn::all_ninety(n).len(), 4 * n * (n - 1));
        }
        assert!(Turn::all_ninety(1).is_empty());
    }

    #[test]
    fn all_ninety_are_ninety() {
        for t in Turn::all_ninety(4) {
            assert_eq!(t.kind(), TurnKind::Ninety);
        }
    }

    #[test]
    fn one_eighty_enumeration() {
        let turns = Turn::all_one_eighty(3);
        assert_eq!(turns.len(), 6);
        for t in turns {
            assert_eq!(t.kind(), TurnKind::OneEighty);
        }
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let t = Turn::new(
            Direction::new(0, Sign::Plus),
            Direction::new(2, Sign::Minus),
        );
        let r = t.reversed();
        assert_eq!(r.from_dir(), t.to_dir());
        assert_eq!(r.to_dir(), t.from_dir());
        assert_eq!(r.reversed(), t);
    }
}
