//! The turn model for adaptive routing (Glass & Ni) — core machinery.
//!
//! The turn model designs wormhole routing algorithms that are deadlock
//! free, livelock free, and maximally adaptive *without* adding physical or
//! virtual channels. It works by analyzing the directions in which packets
//! can turn in a network and the cycles those turns can form, then
//! prohibiting just enough turns to break every cycle.
//!
//! This crate provides:
//!
//! * [`Turn`] and [`TurnSet`] — the turn vocabulary and allowed-turn tables
//!   (Section 2 of the paper);
//! * [`cycle`] — enumeration of the abstract cycles in each plane and the
//!   necessary-condition check that a turn set breaks all of them
//!   (Theorem 1);
//! * [`Cdg`] — the channel dependency graph of Dally & Seitz, the
//!   mechanical deadlock-freedom verdict used throughout the workspace;
//! * [`numbering`] — the channel-numbering witnesses from the paper's
//!   proofs (Figures 6–8, Theorem 5);
//! * [`adaptiveness`] — the closed-form path counts of Sections 3.4 and 5
//!   plus exhaustive path enumeration to validate them;
//! * [`RoutingFunction`] — the interface concrete algorithms implement;
//! * [`verifier`] — a one-call bundle of every check, for validating
//!   custom routing functions before trusting them with a network.
//!
//! # Example: verifying west-first is deadlock free
//!
//! ```
//! use turnroute_model::{presets, Cdg};
//! use turnroute_topology::Mesh;
//!
//! let mesh = Mesh::new_2d(8, 8);
//! let west_first = presets::west_first_turns();
//! let cdg = Cdg::from_turn_set(&mesh, &west_first);
//! assert!(cdg.find_cycle().is_none(), "west-first CDG is acyclic");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adaptiveness;
mod cdg;
pub mod cycle;
pub mod livelock;
pub mod numbering;
pub mod presets;
mod route;
pub mod symmetry;
mod turn;
mod turnset;
pub mod verifier;

pub use cdg::Cdg;
pub use route::RoutingFunction;
pub use turn::{Turn, TurnKind};
pub use turnset::TurnSet;
pub use verifier::FaultMasked;
