//! Allowed-turn tables.

use crate::{Turn, TurnKind};
use turnroute_topology::Direction;

/// The set of turns a routing algorithm permits, stored as a `2n × 2n`
/// boolean matrix indexed by direction indices.
///
/// Continuing straight in the same direction is always allowed — it is not
/// a turn — and is reflected in the matrix so that channel-dependency
/// analysis can treat the matrix uniformly. 90- and 180-degree turns are
/// allowed only if explicitly inserted.
///
/// # Example
///
/// ```
/// use turnroute_model::{Turn, TurnSet};
/// use turnroute_topology::Direction;
///
/// let mut set = TurnSet::no_turns(2);
/// set.allow(Turn::new(Direction::WEST, Direction::NORTH));
/// assert!(set.is_allowed(Direction::WEST, Direction::NORTH));
/// assert!(!set.is_allowed(Direction::NORTH, Direction::WEST));
/// assert!(set.is_allowed(Direction::EAST, Direction::EAST)); // straight
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TurnSet {
    num_dims: usize,
    /// rows[from_index] = bitmask of allowed to_index values.
    rows: Vec<u32>,
}

impl TurnSet {
    /// A turn set over `num_dims` dimensions allowing no turns at all (only
    /// straight continuation).
    ///
    /// # Panics
    ///
    /// Panics if `num_dims == 0` or `num_dims > 16`.
    pub fn no_turns(num_dims: usize) -> TurnSet {
        assert!(num_dims >= 1, "turn set needs at least one dimension");
        assert!(num_dims <= 16, "at most 16 dimensions supported");
        let mut rows = vec![0u32; 2 * num_dims];
        for (i, row) in rows.iter_mut().enumerate() {
            *row = 1 << i; // straight continuation
        }
        TurnSet { num_dims, rows }
    }

    /// A turn set allowing every 90-degree turn (and straight continuation)
    /// but no 180-degree reversals — the unrestricted network the turn
    /// model starts from.
    pub fn all_ninety(num_dims: usize) -> TurnSet {
        let mut set = TurnSet::no_turns(num_dims);
        for t in Turn::all_ninety(num_dims) {
            set.allow(t);
        }
        set
    }

    /// Number of dimensions this turn set covers.
    #[inline]
    pub fn num_dims(&self) -> usize {
        self.num_dims
    }

    /// Allow `turn`.
    ///
    /// # Panics
    ///
    /// Panics if the turn's directions exceed the turn set's dimensions.
    pub fn allow(&mut self, turn: Turn) {
        let (f, t) = self.indices(turn);
        self.rows[f] |= 1 << t;
    }

    /// Prohibit `turn`. Prohibiting straight continuation is rejected.
    ///
    /// # Panics
    ///
    /// Panics if the turn is a straight continuation, or if its directions
    /// exceed the turn set's dimensions.
    pub fn prohibit(&mut self, turn: Turn) {
        assert!(
            turn.kind() != TurnKind::Straight,
            "straight continuation cannot be prohibited"
        );
        let (f, t) = self.indices(turn);
        self.rows[f] &= !(1 << t);
    }

    /// Whether a packet traveling in `from` may next travel in `to`.
    pub fn is_allowed(&self, from: Direction, to: Direction) -> bool {
        let (f, t) = self.indices(Turn::new(from, to));
        self.rows[f] & (1 << t) != 0
    }

    /// Whether `turn` is allowed.
    pub fn is_turn_allowed(&self, turn: Turn) -> bool {
        self.is_allowed(turn.from_dir(), turn.to_dir())
    }

    /// The allowed outgoing directions for a packet traveling in `from`,
    /// as a bitmask over direction indices (compatible with
    /// [`turnroute_topology::DirSet::bits`]).
    pub fn allowed_from_bits(&self, from: Direction) -> u32 {
        self.rows[from.index()]
    }

    /// The outgoing directions a packet may legally take given the direction
    /// it `arrived` on: every direction when the packet is still at its
    /// source (`None`), otherwise exactly the turns (and straight
    /// continuation) this set allows from the arrival direction.
    ///
    /// This is the filter fault-aware routing applies to candidate outputs —
    /// restricting a route to a subset of `legal_outputs` can only remove
    /// channel-dependency edges, never add them, so deadlock freedom of the
    /// full turn set is preserved under any fault pattern.
    pub fn legal_outputs(&self, arrived: Option<Direction>) -> turnroute_topology::DirSet {
        match arrived {
            None => turnroute_topology::DirSet::all(self.num_dims),
            Some(from) => Direction::all(self.num_dims)
                .filter(|&to| self.is_allowed(from, to))
                .collect(),
        }
    }

    /// The 90-degree turns this set allows.
    pub fn allowed_ninety(&self) -> Vec<Turn> {
        Turn::all_ninety(self.num_dims)
            .into_iter()
            .filter(|&t| self.is_turn_allowed(t))
            .collect()
    }

    /// The 90-degree turns this set prohibits.
    pub fn prohibited_ninety(&self) -> Vec<Turn> {
        Turn::all_ninety(self.num_dims)
            .into_iter()
            .filter(|&t| !self.is_turn_allowed(t))
            .collect()
    }

    /// The 180-degree turns this set allows.
    pub fn allowed_one_eighty(&self) -> Vec<Turn> {
        Turn::all_one_eighty(self.num_dims)
            .into_iter()
            .filter(|&t| self.is_turn_allowed(t))
            .collect()
    }

    fn indices(&self, turn: Turn) -> (usize, usize) {
        let f = turn.from_dir().index();
        let t = turn.to_dir().index();
        assert!(
            f < 2 * self.num_dims && t < 2 * self.num_dims,
            "turn {turn} out of range for {}-dimensional turn set",
            self.num_dims
        );
        (f, t)
    }
}

impl std::fmt::Display for TurnSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let prohibited = self.prohibited_ninety();
        write!(
            f,
            "TurnSet({}D, {} of {} 90-degree turns allowed; prohibited:",
            self.num_dims,
            self.allowed_ninety().len(),
            4 * self.num_dims * (self.num_dims.saturating_sub(1)),
        )?;
        for t in prohibited {
            write!(f, " {t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_always_allowed() {
        let set = TurnSet::no_turns(3);
        for d in Direction::all(3) {
            assert!(set.is_allowed(d, d));
        }
    }

    #[test]
    fn no_turns_allows_nothing_else() {
        let set = TurnSet::no_turns(2);
        assert!(set.allowed_ninety().is_empty());
        assert!(set.allowed_one_eighty().is_empty());
    }

    #[test]
    fn all_ninety_counts() {
        let set = TurnSet::all_ninety(3);
        assert_eq!(set.allowed_ninety().len(), 4 * 3 * 2);
        assert_eq!(set.prohibited_ninety().len(), 0);
        assert!(set.allowed_one_eighty().is_empty());
    }

    #[test]
    fn allow_and_prohibit_round_trip() {
        let mut set = TurnSet::no_turns(2);
        let t = Turn::new(Direction::NORTH, Direction::EAST);
        set.allow(t);
        assert!(set.is_turn_allowed(t));
        set.prohibit(t);
        assert!(!set.is_turn_allowed(t));
    }

    #[test]
    fn one_eighty_opt_in() {
        let mut set = TurnSet::no_turns(2);
        let rev = Turn::new(Direction::EAST, Direction::WEST);
        assert!(!set.is_turn_allowed(rev));
        set.allow(rev);
        assert!(set.is_turn_allowed(rev));
        assert_eq!(set.allowed_one_eighty(), vec![rev]);
    }

    #[test]
    #[should_panic(expected = "cannot be prohibited")]
    fn prohibiting_straight_panics() {
        let mut set = TurnSet::no_turns(2);
        set.prohibit(Turn::new(Direction::EAST, Direction::EAST));
    }

    #[test]
    fn allowed_from_bits_matches_queries() {
        let mut set = TurnSet::no_turns(2);
        set.allow(Turn::new(Direction::WEST, Direction::NORTH));
        let bits = set.allowed_from_bits(Direction::WEST);
        assert_ne!(bits & (1 << Direction::NORTH.index()), 0);
        assert_ne!(bits & (1 << Direction::WEST.index()), 0); // straight
        assert_eq!(bits & (1 << Direction::SOUTH.index()), 0);
    }

    #[test]
    fn legal_outputs_filters_by_arrival() {
        use turnroute_topology::DirSet;
        let mut set = TurnSet::no_turns(2);
        set.allow(Turn::new(Direction::WEST, Direction::NORTH));
        // At the source every direction is legal.
        assert_eq!(set.legal_outputs(None), DirSet::all(2));
        // Arrived west: straight plus the one allowed turn.
        let from_west: Vec<Direction> = set.legal_outputs(Some(Direction::WEST)).iter().collect();
        assert_eq!(from_west, vec![Direction::WEST, Direction::NORTH]);
        // Arrived north: straight only.
        let from_north: Vec<Direction> = set.legal_outputs(Some(Direction::NORTH)).iter().collect();
        assert_eq!(from_north, vec![Direction::NORTH]);
    }

    #[test]
    fn display_mentions_prohibited() {
        let mut set = TurnSet::all_ninety(2);
        set.prohibit(Turn::new(Direction::NORTH, Direction::WEST));
        let s = set.to_string();
        assert!(s.contains("north->west"), "{s}");
        assert!(s.contains("7 of 8"), "{s}");
    }
}
