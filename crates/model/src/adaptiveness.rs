//! Degree-of-adaptiveness analysis (Sections 3.4 and 5).
//!
//! `S_algorithm` counts the shortest paths an algorithm allows between a
//! source and destination; the ratio `S_p / S_f` against a fully adaptive
//! algorithm measures how adaptive a partially adaptive algorithm is. This
//! module provides the paper's closed forms and an exhaustive counter that
//! validates them by dynamic programming over the routing relation itself.

use crate::RoutingFunction;
use std::collections::HashMap;
use turnroute_topology::{Coord, NodeId, Topology};

/// `n!` as a `u128`.
///
/// # Panics
///
/// Panics if the result would overflow (`n > 34`).
pub fn factorial(n: u32) -> u128 {
    assert!(n <= 34, "factorial({n}) overflows u128");
    (1..=u128::from(n)).product()
}

/// The multinomial coefficient `(Σ deltas)! / Π (delta_i!)` — the number of
/// shortest paths between mesh nodes with per-dimension offsets `deltas`,
/// i.e. `S_f` for a minimal fully adaptive algorithm (Section 3.4).
pub fn multinomial(deltas: &[u16]) -> u128 {
    // Compute incrementally as a product of binomials to avoid giant
    // intermediate factorials: choose positions dimension by dimension.
    let mut total: u32 = 0;
    let mut result: u128 = 1;
    for &d in deltas {
        for i in 1..=u32::from(d) {
            total += 1;
            // result *= total; result /= i — keep exact by multiplying
            // first (binomial prefix products are always divisible).
            result = result * u128::from(total) / u128::from(i);
        }
    }
    result
}

/// `S_f` between two mesh nodes: the number of shortest paths a fully
/// adaptive minimal algorithm allows.
pub fn s_fully_adaptive(src: &Coord, dst: &Coord) -> u128 {
    multinomial(&src.deltas(dst))
}

/// `S_west-first` (Section 3.4): fully adaptive when the destination is not
/// to the west (`d_x ≥ s_x`), otherwise a single shortest path.
pub fn s_west_first(src: &Coord, dst: &Coord) -> u128 {
    assert_eq!(src.num_dims(), 2, "2D closed form");
    if dst.get(0) >= src.get(0) {
        s_fully_adaptive(src, dst)
    } else {
        1
    }
}

/// `S_north-last` (Section 3.4): fully adaptive when the destination is not
/// to the north (`d_y ≤ s_y`), otherwise a single shortest path.
pub fn s_north_last(src: &Coord, dst: &Coord) -> u128 {
    assert_eq!(src.num_dims(), 2, "2D closed form");
    if dst.get(1) <= src.get(1) {
        s_fully_adaptive(src, dst)
    } else {
        1
    }
}

/// `S_negative-first` (Section 3.4): fully adaptive when the journey is
/// entirely negative or entirely positive, otherwise a single shortest
/// path (all negative hops first, then all positive hops).
pub fn s_negative_first(src: &Coord, dst: &Coord) -> u128 {
    assert_eq!(src.num_dims(), 2, "2D closed form");
    let all_neg = dst.get(0) <= src.get(0) && dst.get(1) <= src.get(1);
    let all_pos = dst.get(0) >= src.get(0) && dst.get(1) >= src.get(1);
    if all_neg || all_pos {
        s_fully_adaptive(src, dst)
    } else {
        1
    }
}

/// `S_p-cube` (Section 5): `h_1! · h_0!`, where `h_1` bits must be cleared
/// (phase 1) and `h_0` bits must be set (phase 2).
pub fn s_pcube(h1: u32, h0: u32) -> u128 {
    factorial(h1) * factorial(h0)
}

/// `S_f` in a hypercube: `h!` for Hamming distance `h` (Section 5).
pub fn s_fully_adaptive_cube(h: u32) -> u128 {
    factorial(h)
}

/// Exhaustively count the shortest paths from `src` to `dst` that
/// `routing` allows, by memoized dynamic programming over
/// `(node, arrival direction)` states.
///
/// # Panics
///
/// Panics if `routing` is not minimal (path counts of nonminimal relations
/// are unbounded).
pub fn count_minimal_paths(
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    src: NodeId,
    dst: NodeId,
) -> u128 {
    assert!(
        routing.is_minimal(),
        "path counting requires a minimal routing function"
    );
    // State: (node, arrived direction index + 1; 0 = injected).
    let mut memo: HashMap<(u32, usize), u128> = HashMap::new();
    fn go(
        topo: &dyn Topology,
        routing: &dyn RoutingFunction,
        memo: &mut HashMap<(u32, usize), u128>,
        node: NodeId,
        arrived: Option<turnroute_topology::Direction>,
        dst: NodeId,
    ) -> u128 {
        if node == dst {
            return 1;
        }
        let key = (node.0, arrived.map_or(0, |d| d.index() + 1));
        if let Some(&v) = memo.get(&key) {
            return v;
        }
        let mut total: u128 = 0;
        for dir in routing.route(topo, node, dst, arrived).iter() {
            let next = topo
                .neighbor(node, dir)
                .expect("routing offered a nonexistent channel");
            debug_assert!(
                topo.min_hops(next, dst) < topo.min_hops(node, dst),
                "minimal routing must reduce distance"
            );
            total += go(topo, routing, memo, next, Some(dir), dst);
        }
        memo.insert(key, total);
        total
    }
    go(topo, routing, &mut memo, src, None, dst)
}

/// Enumerate up to `limit` distinct shortest paths from `src` to `dst`
/// that `routing` allows, each as the sequence of nodes visited
/// (inclusive of both endpoints). Paths are produced in the
/// lexicographic order of the direction choices at each hop.
///
/// # Panics
///
/// Panics if `routing` is not minimal.
pub fn enumerate_minimal_paths(
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    src: NodeId,
    dst: NodeId,
    limit: usize,
) -> Vec<Vec<NodeId>> {
    assert!(
        routing.is_minimal(),
        "path enumeration requires a minimal routing function"
    );
    let mut out = Vec::new();
    let mut path = vec![src];
    fn go(
        topo: &dyn Topology,
        routing: &dyn RoutingFunction,
        out: &mut Vec<Vec<NodeId>>,
        path: &mut Vec<NodeId>,
        arrived: Option<turnroute_topology::Direction>,
        dst: NodeId,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        let node = *path.last().expect("path is never empty");
        if node == dst {
            out.push(path.clone());
            return;
        }
        for dir in routing.route(topo, node, dst, arrived).iter() {
            let next = topo
                .neighbor(node, dir)
                .expect("routing offered a nonexistent channel");
            path.push(next);
            go(topo, routing, out, path, Some(dir), dst, limit);
            path.pop();
            if out.len() >= limit {
                return;
            }
        }
    }
    go(topo, routing, &mut out, &mut path, None, dst, limit);
    out
}

/// Summary of an algorithm's adaptiveness across all source–destination
/// pairs of a topology (Section 3.4's aggregate measures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivenessSummary {
    /// Mean of `S_p / S_f` over all ordered pairs with `src != dst`.
    pub mean_ratio: f64,
    /// Fraction of pairs for which the algorithm allows exactly one
    /// shortest path (`S_p = 1`, counting only pairs where `S_f > 1`).
    pub single_path_fraction: f64,
    /// Number of ordered pairs examined.
    pub pairs: usize,
}

/// Compute the adaptiveness summary of `routing` on `topo` by exhaustive
/// path counting against the fully adaptive count.
///
/// `s_f` must give the fully adaptive shortest-path count for a pair of
/// nodes (use [`s_fully_adaptive`] on mesh coordinates or
/// [`s_fully_adaptive_cube`] on Hamming distances).
pub fn adaptiveness_summary(
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    mut s_f: impl FnMut(NodeId, NodeId) -> u128,
) -> AdaptivenessSummary {
    let n = topo.num_nodes();
    let mut sum_ratio = 0.0;
    let mut single = 0usize;
    let mut multi_pairs = 0usize;
    let mut pairs = 0usize;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let (s, d) = (NodeId(s as u32), NodeId(d as u32));
            let sp = count_minimal_paths(topo, routing, s, d);
            let sf = s_f(s, d);
            assert!(sp >= 1, "minimal routing must allow at least one path");
            assert!(sp <= sf, "S_p cannot exceed S_f");
            sum_ratio += sp as f64 / sf as f64;
            pairs += 1;
            if sf > 1 {
                multi_pairs += 1;
                if sp == 1 {
                    single += 1;
                }
            }
        }
    }
    AdaptivenessSummary {
        mean_ratio: sum_ratio / pairs as f64,
        single_path_fraction: if multi_pairs == 0 {
            0.0
        } else {
            single as f64 / multi_pairs as f64
        },
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_small_values() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(6), 720);
        assert_eq!(factorial(10), 3_628_800);
    }

    #[test]
    fn multinomial_matches_factorial_formula() {
        // (3+4)! / (3! 4!) = 35
        assert_eq!(multinomial(&[3, 4]), 35);
        // (2+2+2)! / (2! 2! 2!) = 720 / 8 = 90
        assert_eq!(multinomial(&[2, 2, 2]), 90);
        assert_eq!(multinomial(&[0, 0]), 1);
        assert_eq!(multinomial(&[5]), 1);
        assert_eq!(multinomial(&[]), 1);
    }

    #[test]
    fn multinomial_large_does_not_overflow() {
        // 16x16 mesh worst case: corner to corner.
        assert_eq!(multinomial(&[15, 15]), 155_117_520);
    }

    #[test]
    fn closed_forms_2d() {
        let s = Coord::new(vec![4, 4]);
        let ne = Coord::new(vec![6, 7]); // dx=2, dy=3
        let sw = Coord::new(vec![2, 1]);
        let nw = Coord::new(vec![2, 7]);
        let se = Coord::new(vec![6, 1]);
        let full = multinomial(&[2, 3]); // 10

        assert_eq!(s_west_first(&s, &ne), full);
        assert_eq!(s_west_first(&s, &se), full);
        assert_eq!(s_west_first(&s, &nw), 1);
        assert_eq!(s_west_first(&s, &sw), 1);

        assert_eq!(s_north_last(&s, &sw), full);
        assert_eq!(s_north_last(&s, &se), full);
        assert_eq!(s_north_last(&s, &ne), 1);
        assert_eq!(s_north_last(&s, &nw), 1);

        assert_eq!(s_negative_first(&s, &sw), full);
        assert_eq!(s_negative_first(&s, &ne), full);
        assert_eq!(s_negative_first(&s, &nw), 1);
        assert_eq!(s_negative_first(&s, &se), 1);
    }

    #[test]
    fn pcube_section_5_example() {
        // Source 1011010100, destination 0010111001: h1 = 3, h0 = 3,
        // 3! * 3! = 36 shortest paths.
        assert_eq!(s_pcube(3, 3), 36);
        assert_eq!(s_fully_adaptive_cube(6), 720);
    }

    #[test]
    fn s_f_on_axis_is_one() {
        let a = Coord::new(vec![0, 3]);
        let b = Coord::new(vec![5, 3]);
        assert_eq!(s_fully_adaptive(&a, &b), 1);
    }

    /// Minimal fully adaptive helper for enumeration tests.
    struct FullyAdaptive;

    impl crate::RoutingFunction for FullyAdaptive {
        fn name(&self) -> &str {
            "fully-adaptive"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            _arrived: Option<turnroute_topology::Direction>,
        ) -> turnroute_topology::DirSet {
            topo.productive_dirs(current, dest)
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    #[test]
    fn enumeration_matches_count_and_paths_are_valid() {
        let mesh = turnroute_topology::Mesh::new_2d(5, 5);
        let src = NodeId(0);
        let dst = NodeId(18); // (3, 3): 20 shortest paths
        let paths = enumerate_minimal_paths(&mesh, &FullyAdaptive, src, dst, usize::MAX);
        assert_eq!(
            paths.len() as u128,
            count_minimal_paths(&mesh, &FullyAdaptive, src, dst)
        );
        assert_eq!(paths.len(), 20);
        for p in &paths {
            assert_eq!(*p.first().unwrap(), src);
            assert_eq!(*p.last().unwrap(), dst);
            assert_eq!(p.len() - 1, mesh.min_hops(src, dst));
            for w in p.windows(2) {
                assert_eq!(mesh.min_hops(w[0], w[1]), 1);
            }
        }
        // All paths distinct.
        let mut sorted = paths.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), paths.len());
    }

    #[test]
    fn enumeration_respects_limit() {
        let mesh = turnroute_topology::Mesh::new_2d(6, 6);
        let paths = enumerate_minimal_paths(&mesh, &FullyAdaptive, NodeId(0), NodeId(35), 7);
        assert_eq!(paths.len(), 7);
    }
}
