//! Channel numberings: the deadlock-freedom witnesses of the paper's
//! proofs.
//!
//! Dally & Seitz: a routing algorithm is deadlock free if the network's
//! channels can be numbered so that the algorithm routes every packet along
//! channels with strictly decreasing (or increasing) numbers. This module
//! implements the concrete numberings used in the paper's proofs — the
//! west-first two-digit scheme of Theorem 2 (Figures 6–8) and the
//! negative-first scheme of Theorem 5 — plus a generic numbering extracted
//! from any acyclic [`Cdg`], and a checker that verifies monotonicity over
//! every move a routing function can make.

use crate::{Cdg, RoutingFunction};
use turnroute_topology::{ChannelId, Mesh, NodeId, Sign, Topology};

/// Whether packets must see strictly increasing or strictly decreasing
/// channel numbers along their routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Monotonic {
    /// Numbers must strictly increase hop over hop (Theorem 5 style).
    Increasing,
    /// Numbers must strictly decrease hop over hop (Theorem 2 style).
    Decreasing,
}

/// A reported violation of monotonicity: the packet moved from the first
/// channel to the second, but their numbers are not ordered as required.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The channel the packet arrived on.
    pub from: ChannelId,
    /// The channel the packet departed on.
    pub to: ChannelId,
    /// Number assigned to `from`.
    pub from_number: i64,
    /// Number assigned to `to`.
    pub to_number: i64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "move {}({}) -> {}({}) violates monotonic numbering",
            self.from, self.from_number, self.to, self.to_number
        )
    }
}

/// The negative-first channel numbering of Theorem 5.
///
/// With `K = Σ k_i` and `X = Σ x_i` for the node a channel leaves, every
/// channel leaving in a positive direction is numbered `K − n + X` and
/// every channel leaving in a negative direction `K − n − X`. The
/// negative-first algorithm routes every packet along strictly increasing
/// numbers.
///
/// Returns one number per channel, indexed by [`ChannelId`] in the order of
/// [`Topology::channels`].
pub fn negative_first_numbering(topo: &dyn Topology) -> Vec<i64> {
    let k_sum: i64 = (0..topo.num_dims()).map(|d| topo.radix(d) as i64).sum();
    let n = topo.num_dims() as i64;
    topo.channels()
        .iter()
        .map(|ch| {
            let x = i64::from(topo.coord_of(ch.src()).component_sum());
            match ch.dir().sign() {
                Sign::Plus => k_sum - n + x,
                Sign::Minus => k_sum - n - x,
            }
        })
        .collect()
}

/// A west-first channel numbering for a 2D mesh in the spirit of Figures
/// 6–8 (Theorem 2): lexicographic two-digit numbers `(a, b)` encoded as
/// `a * base + b`, with westward channels numbered above all others and
/// decreasing the farther west, and eastward/northward/southward channels
/// decreasing the farther east (north/south runs tie-broken by the second
/// digit). The west-first algorithm routes every packet along strictly
/// decreasing numbers.
///
/// # Panics
///
/// Panics if `mesh` is not 2-dimensional.
pub fn west_first_numbering(mesh: &Mesh) -> Vec<i64> {
    assert_eq!(mesh.num_dims(), 2, "west-first numbering is for 2D meshes");
    let m = mesh.radix(0) as i64;
    let n = mesh.radix(1) as i64;
    let base = n.max(1) + 1;
    mesh.channels()
        .iter()
        .map(|ch| {
            let c = mesh.coord_of(ch.src());
            let (x, y) = (i64::from(c.get(0)), i64::from(c.get(1)));
            let (a, b) = match (ch.dir().dim(), ch.dir().sign()) {
                (0, Sign::Minus) => (2 * m + x, 0),                  // west
                (0, Sign::Plus) => (2 * (m - 1 - x), 0),             // east
                (1, Sign::Plus) => (2 * (m - 1 - x) + 1, n - 1 - y), // north
                (1, Sign::Minus) => (2 * (m - 1 - x) + 1, y),        // south
                _ => unreachable!("2D mesh has dims 0 and 1"),
            };
            a * base + b
        })
        .collect()
}

/// Extract a channel numbering from an acyclic CDG: channel numbers are
/// topological positions, so every dependency edge — hence every move any
/// covered packet can make — strictly increases the number. Returns `None`
/// if the CDG is cyclic (no such numbering exists; the routing deadlocks).
pub fn numbering_from_cdg(cdg: &Cdg) -> Option<Vec<i64>> {
    let order = cdg.topological_order()?;
    let mut numbers = vec![0i64; cdg.channels().len()];
    for (pos, ch) in order.iter().enumerate() {
        numbers[ch.index()] = pos as i64;
    }
    Some(numbers)
}

/// Extract a numbering for an *arbitrary* dependency relation — the
/// generalization of [`numbering_from_cdg`] to graphs whose vertices are
/// not the physical channels of a [`Topology`]: virtual channels of the
/// double-y scheme, fault-degraded channel graphs, or anything else with
/// dense `u32` vertex ids. `edges` are `(from, to)` pairs; the result
/// assigns every vertex a number such that every edge strictly increases
/// it, or `None` if the relation is cyclic (no numbering exists).
///
/// # Panics
///
/// Panics if an edge endpoint is `>= num_vertices`.
pub fn numbering_from_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Option<Vec<i64>> {
    // Kahn's algorithm; the topological position is the number.
    let mut indegree = vec![0usize; num_vertices];
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); num_vertices];
    for &(a, b) in edges {
        adj[a as usize].push(b);
        indegree[b as usize] += 1;
    }
    let mut queue: Vec<usize> = (0..num_vertices).filter(|&v| indegree[v] == 0).collect();
    let mut numbers = vec![0i64; num_vertices];
    let mut seen = 0usize;
    while let Some(v) = queue.pop() {
        numbers[v] = seen as i64;
        seen += 1;
        for &w in &adj[v] {
            indegree[w as usize] -= 1;
            if indegree[w as usize] == 0 {
                queue.push(w as usize);
            }
        }
    }
    (seen == num_vertices).then_some(numbers)
}

/// Verify that `routing` moves packets along strictly monotonic channel
/// numbers: for every channel `c1` into a node, every destination, and
/// every output channel `c2` the routing function offers, `numbers[c2]`
/// must be ordered after `numbers[c1]` as `monotonic` requires.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
///
/// # Panics
///
/// Panics if `numbers.len()` differs from the topology's channel count.
pub fn verify_monotonic(
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    numbers: &[i64],
    monotonic: Monotonic,
) -> Result<(), Violation> {
    let channels = topo.channels();
    assert_eq!(
        numbers.len(),
        channels.len(),
        "one number per channel required"
    );
    // Slot -> channel id lookup for resolving output directions.
    let mut slot_to_channel = vec![u32::MAX; topo.channel_slot_count()];
    for ch in &channels {
        slot_to_channel[topo.channel_slot(ch.src(), ch.dir())] = ch.id().0;
    }
    let minimal = routing.is_minimal();
    for c1 in &channels {
        let mid = c1.dst();
        for dest in 0..topo.num_nodes() {
            let dest = NodeId(dest as u32);
            if dest == mid {
                continue;
            }
            if minimal && topo.min_hops(mid, dest) >= topo.min_hops(c1.src(), dest) {
                continue; // no minimal packet arrives on c1 bound for dest
            }
            for out in routing.route(topo, mid, dest, Some(c1.dir())).iter() {
                let slot = topo.channel_slot(mid, out);
                let c2 = slot_to_channel[slot];
                assert_ne!(c2, u32::MAX, "routing offered a nonexistent channel");
                let (a, b) = (numbers[c1.id().index()], numbers[c2 as usize]);
                let ok = match monotonic {
                    Monotonic::Increasing => a < b,
                    Monotonic::Decreasing => a > b,
                };
                if !ok {
                    return Err(Violation {
                        from: c1.id(),
                        to: ChannelId(c2),
                        from_number: a,
                        to_number: b,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TurnSet;
    use turnroute_topology::{DirSet, Direction};

    #[test]
    fn numbering_from_edges_matches_cdg_semantics() {
        // A small DAG: every edge must strictly increase the number.
        let edges = [(0u32, 1u32), (1, 2), (0, 2), (3, 1)];
        let numbers = numbering_from_edges(4, &edges).expect("acyclic");
        for (a, b) in edges {
            assert!(numbers[a as usize] < numbers[b as usize], "{a} -> {b}");
        }
        // A cycle admits no numbering.
        assert!(numbering_from_edges(3, &[(0, 1), (1, 2), (2, 0)]).is_none());
        // The empty graph trivially does.
        assert_eq!(numbering_from_edges(0, &[]), Some(Vec::new()));
    }

    #[test]
    fn numbering_from_edges_agrees_with_cdg_on_a_real_turn_set() {
        let mesh = Mesh::new_2d(4, 3);
        let cdg = Cdg::from_turn_set(&mesh, &crate::presets::west_first_turns());
        let mut edges = Vec::new();
        for ch in cdg.channels() {
            for &succ in cdg.successors(ch.id()) {
                edges.push((ch.id().0, succ));
            }
        }
        let generic = numbering_from_edges(cdg.channels().len(), &edges).expect("acyclic");
        assert!(numbering_from_cdg(&cdg).is_some());
        for (a, b) in edges {
            assert!(generic[a as usize] < generic[b as usize]);
        }
    }

    /// Minimal negative-first routing, inlined for witness tests.
    struct MinimalNegativeFirst;

    impl RoutingFunction for MinimalNegativeFirst {
        fn name(&self) -> &str {
            "negative-first (test)"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            arrived: Option<Direction>,
        ) -> DirSet {
            let productive = topo.productive_dirs(current, dest);
            if matches!(arrived, Some(d) if d.sign() == Sign::Plus) {
                // Phase 2: once traveling positive, never turn negative.
                return productive
                    .iter()
                    .filter(|d| d.sign() == Sign::Plus)
                    .collect();
            }
            let negative: DirSet = productive
                .iter()
                .filter(|d| d.sign() == Sign::Minus)
                .collect();
            if negative.is_empty() {
                productive
            } else {
                negative
            }
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    /// Minimal west-first routing, inlined for witness tests.
    struct MinimalWestFirst;

    impl RoutingFunction for MinimalWestFirst {
        fn name(&self) -> &str {
            "west-first (test)"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            arrived: Option<Direction>,
        ) -> DirSet {
            let productive = topo.productive_dirs(current, dest);
            if productive.contains(Direction::WEST) {
                match arrived {
                    None | Some(Direction::WEST) => DirSet::single(Direction::WEST),
                    // A west-first packet never needs west after leaving it;
                    // this state is unreachable.
                    Some(_) => DirSet::empty(),
                }
            } else {
                productive
            }
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    #[test]
    fn theorem_5_numbering_increases_for_negative_first() {
        for dims in [vec![4, 4], vec![3, 3, 3], vec![5, 2, 3]] {
            let mesh = Mesh::new(dims);
            let numbers = negative_first_numbering(&mesh);
            verify_monotonic(
                &mesh,
                &MinimalNegativeFirst,
                &numbers,
                Monotonic::Increasing,
            )
            .expect("Theorem 5 numbering must strictly increase");
        }
    }

    #[test]
    fn theorem_2_numbering_decreases_for_west_first() {
        for (m, n) in [(4, 4), (8, 8), (3, 7), (7, 3)] {
            let mesh = Mesh::new_2d(m, n);
            let numbers = west_first_numbering(&mesh);
            verify_monotonic(&mesh, &MinimalWestFirst, &numbers, Monotonic::Decreasing)
                .expect("Theorem 2 style numbering must strictly decrease");
        }
    }

    #[test]
    fn west_first_numbering_fails_for_negative_first() {
        // Negative-first takes turns west-first prohibits, so the
        // west-first numbering must NOT witness it.
        let mesh = Mesh::new_2d(4, 4);
        let numbers = west_first_numbering(&mesh);
        assert!(verify_monotonic(
            &mesh,
            &MinimalNegativeFirst,
            &numbers,
            Monotonic::Decreasing
        )
        .is_err());
    }

    #[test]
    fn cdg_numbering_witnesses_every_acyclic_preset() {
        let mesh = Mesh::new_2d(4, 4);
        let set = crate::presets::negative_first_turns(2);
        let cdg = Cdg::from_turn_set(&mesh, &set);
        let numbers = numbering_from_cdg(&cdg).expect("acyclic");
        verify_monotonic(
            &mesh,
            &MinimalNegativeFirst,
            &numbers,
            Monotonic::Increasing,
        )
        .expect("topological numbering witnesses the covered routing");
    }

    #[test]
    fn cdg_numbering_none_when_cyclic() {
        let mesh = Mesh::new_2d(3, 3);
        let cdg = Cdg::from_turn_set(&mesh, &TurnSet::all_ninety(2));
        assert!(numbering_from_cdg(&cdg).is_none());
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation {
            from: ChannelId(1),
            to: ChannelId(2),
            from_number: 5,
            to_number: 5,
        };
        let s = v.to_string();
        assert!(s.contains("c1(5)") && s.contains("c2(5)"), "{s}");
    }
}
