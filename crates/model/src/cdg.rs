//! Channel dependency graphs (Dally & Seitz).
//!
//! A routing algorithm is deadlock free if the channels of the network can
//! be numbered so that every packet is routed along strictly decreasing (or
//! increasing) numbers — equivalently, if the *channel dependency graph*
//! (CDG) is acyclic. Vertices are unidirectional channels; there is an edge
//! from channel `c1` to channel `c2` if a packet holding `c1` may next
//! acquire `c2`. This module builds CDGs two ways — from a raw
//! [`TurnSet`] (all moves the turn rules permit) or from a concrete
//! [`RoutingFunction`] (only moves some destination actually induces) — and
//! searches them for cycles.

use crate::{RoutingFunction, TurnSet};
use turnroute_topology::{Channel, ChannelId, DirSet, Direction, NodeId, Topology};

/// A channel dependency graph over the channels of a topology.
///
/// # Example
///
/// ```
/// use turnroute_model::{Cdg, TurnSet};
/// use turnroute_topology::Mesh;
///
/// let mesh = Mesh::new_2d(4, 4);
/// // With every 90-degree turn allowed the CDG is cyclic (deadlock).
/// let unrestricted = Cdg::from_turn_set(&mesh, &TurnSet::all_ninety(2));
/// assert!(unrestricted.find_cycle().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Cdg {
    channels: Vec<Channel>,
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl Cdg {
    /// Build the CDG induced by a turn set: a dependency exists from each
    /// channel into a node to each channel out of that node whenever the
    /// corresponding turn (or straight continuation) is allowed.
    ///
    /// This is the *potential* dependency graph — it assumes a packet might
    /// take any allowed turn, as nonminimal routing permits. Acyclicity
    /// here is the strongest verdict: the turn rules alone prevent
    /// deadlock regardless of destination logic.
    ///
    /// # Panics
    ///
    /// Panics if the turn set's dimensionality differs from the topology's.
    pub fn from_turn_set(topo: &dyn Topology, set: &TurnSet) -> Cdg {
        assert_eq!(
            set.num_dims(),
            topo.num_dims(),
            "turn set dimensionality must match topology"
        );
        Self::build(topo, |mid, in_dir| {
            let _ = mid;
            DirSet::all(set.num_dims())
                .iter()
                .filter(|&out| set.is_allowed(in_dir, out))
                .collect()
        })
    }

    /// Build the CDG induced by a routing function: a dependency exists
    /// from `c1` into node `v` to `c2` out of `v` iff *some* destination
    /// makes the routing function offer `c2` to a packet that arrived on
    /// `c1`.
    ///
    /// Only *reachable* states are quantified: for a minimal routing
    /// function, a packet holding `c1` must have found `c1` productive, so
    /// destinations that `c1` does not move toward are excluded.
    pub fn from_routing(topo: &dyn Topology, routing: &dyn RoutingFunction) -> Cdg {
        let num_nodes = topo.num_nodes();
        let minimal = routing.is_minimal();
        Self::build(topo, |mid, in_dir| {
            let src = topo
                .neighbor(mid, in_dir.opposite())
                .expect("incoming channel has a source");
            let mut union = DirSet::empty();
            for dest in 0..num_nodes {
                let dest = NodeId(dest as u32);
                if dest == mid {
                    continue;
                }
                if minimal && topo.min_hops(mid, dest) >= topo.min_hops(src, dest) {
                    continue; // no minimal packet arrives on c1 bound for dest
                }
                union = union.union(routing.route(topo, mid, dest, Some(in_dir)));
            }
            union
        })
    }

    /// Shared construction: `successors(v, in_dir)` yields the directions a
    /// packet that entered `v` traveling `in_dir` may leave by.
    fn build(topo: &dyn Topology, mut successors: impl FnMut(NodeId, Direction) -> DirSet) -> Cdg {
        let channels = topo.channels();
        // Map (node, direction) slots to channel indices for O(1) lookup.
        let mut slot_to_channel = vec![u32::MAX; topo.channel_slot_count()];
        for ch in &channels {
            slot_to_channel[topo.channel_slot(ch.src(), ch.dir())] = ch.id().0;
        }
        let mut adj = vec![Vec::new(); channels.len()];
        let mut num_edges = 0;
        for ch in &channels {
            let mid = ch.dst();
            let outs = successors(mid, ch.dir());
            for out_dir in outs.iter() {
                if topo.neighbor(mid, out_dir).is_none() {
                    continue;
                }
                let next = slot_to_channel[topo.channel_slot(mid, out_dir)];
                debug_assert_ne!(next, u32::MAX);
                adj[ch.id().index()].push(next);
                num_edges += 1;
            }
        }
        Cdg {
            channels,
            adj,
            num_edges,
        }
    }

    /// The channels (vertices) of the graph, indexed by channel id.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The successor channel ids of `channel`.
    pub fn successors(&self, channel: ChannelId) -> &[u32] {
        &self.adj[channel.index()]
    }

    /// Find a dependency cycle, returning the channels along it (each
    /// waiting on the next, the last waiting on the first), or `None` if
    /// the graph is acyclic — i.e. the routing is deadlock free.
    pub fn find_cycle(&self) -> Option<Vec<ChannelId>> {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.channels.len();
        let mut color = vec![WHITE; n];
        let mut path: Vec<usize> = Vec::new();
        // Iterative DFS: stack of (vertex, next-successor-index).
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if color[start] != WHITE {
                continue;
            }
            color[start] = GRAY;
            path.push(start);
            stack.push((start, 0));
            while let Some(&mut (v, ref mut next_idx)) = stack.last_mut() {
                if *next_idx < self.adj[v].len() {
                    let w = self.adj[v][*next_idx] as usize;
                    *next_idx += 1;
                    match color[w] {
                        WHITE => {
                            color[w] = GRAY;
                            path.push(w);
                            stack.push((w, 0));
                        }
                        GRAY => {
                            // Found a cycle: the suffix of `path` from w.
                            let pos = path.iter().position(|&x| x == w).expect("gray on path");
                            return Some(
                                path[pos..].iter().map(|&i| ChannelId(i as u32)).collect(),
                            );
                        }
                        _ => {}
                    }
                } else {
                    color[v] = BLACK;
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }

    /// A topological order of the channels (lower position = acquired
    /// later), or `None` if the graph is cyclic. An acyclic CDG's
    /// topological order *is* a channel numbering in the Dally–Seitz sense:
    /// every packet traverses channels in strictly decreasing position.
    pub fn topological_order(&self) -> Option<Vec<ChannelId>> {
        let n = self.channels.len();
        let mut indegree = vec![0usize; n];
        for succs in &self.adj {
            for &w in succs {
                indegree[w as usize] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(ChannelId(v as u32));
            for &w in &self.adj[v] {
                indegree[w as usize] -= 1;
                if indegree[w as usize] == 0 {
                    queue.push(w as usize);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Whether the dependency graph is acyclic (deadlock free).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Find a *globally minimal* dependency cycle: no cycle in the graph
    /// has fewer channels. Returns `None` iff the graph is acyclic.
    ///
    /// [`Cdg::find_cycle`] returns whatever cycle DFS stumbles into first,
    /// which on a big mesh can thread through dozens of channels; a
    /// shortest cycle is the witness a human can actually read. BFS from
    /// every vertex, looking for the shortest path that returns to its
    /// start; deterministic, so the same graph always yields the same
    /// witness. Format matches `find_cycle`: each channel's successors
    /// contain the next, and the last wraps to the first.
    pub fn find_shortest_cycle(&self) -> Option<Vec<ChannelId>> {
        let n = self.channels.len();
        let mut best: Option<Vec<usize>> = None;
        let mut dist = vec![u32::MAX; n];
        let mut parent = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for s in 0..n {
            dist.fill(u32::MAX);
            parent.fill(u32::MAX);
            queue.clear();
            dist[s] = 0;
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                // A cycle closing through v has dist[v] + 1 edges; prune
                // whole frontiers that cannot beat the current best.
                if let Some(b) = &best {
                    if dist[v] as usize + 1 >= b.len() {
                        continue;
                    }
                }
                for &w in &self.adj[v] {
                    let w = w as usize;
                    if w == s {
                        // Shortest path s -> v plus the edge v -> s.
                        let mut path = Vec::with_capacity(dist[v] as usize + 1);
                        let mut cur = v;
                        while cur != s {
                            path.push(cur);
                            cur = parent[cur] as usize;
                        }
                        path.push(s);
                        path.reverse();
                        if best.as_ref().is_none_or(|b| path.len() < b.len()) {
                            best = Some(path);
                        }
                    } else if dist[w] == u32::MAX {
                        dist[w] = dist[v] + 1;
                        parent[w] = v as u32;
                        queue.push_back(w);
                    }
                }
            }
        }
        best.map(|p| p.into_iter().map(|i| ChannelId(i as u32)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use turnroute_topology::Mesh;

    #[test]
    fn unrestricted_2d_mesh_is_cyclic() {
        let mesh = Mesh::new_2d(3, 3);
        let cdg = Cdg::from_turn_set(&mesh, &TurnSet::all_ninety(2));
        let cycle = cdg.find_cycle().expect("unrestricted turns deadlock");
        // Witness is a real cycle: each channel's successor list contains
        // the next channel.
        for (i, &c) in cycle.iter().enumerate() {
            let next = cycle[(i + 1) % cycle.len()];
            assert!(cdg.successors(c).contains(&next.0));
        }
        assert!(!cdg.is_acyclic());
    }

    #[test]
    fn xy_turn_set_is_acyclic() {
        let mesh = Mesh::new_2d(5, 4);
        let cdg = Cdg::from_turn_set(&mesh, &presets::xy_turns());
        assert!(cdg.is_acyclic());
        assert!(cdg.topological_order().is_some());
    }

    #[test]
    fn west_first_turn_set_is_acyclic() {
        let mesh = Mesh::new_2d(4, 4);
        assert!(Cdg::from_turn_set(&mesh, &presets::west_first_turns()).is_acyclic());
    }

    #[test]
    fn negative_first_3d_turn_set_is_acyclic() {
        let mesh = Mesh::new(vec![3, 3, 3]);
        let cdg = Cdg::from_turn_set(&mesh, &presets::negative_first_turns(3));
        assert!(cdg.is_acyclic());
    }

    #[test]
    fn topological_order_is_none_for_cyclic() {
        let mesh = Mesh::new_2d(3, 3);
        let cdg = Cdg::from_turn_set(&mesh, &TurnSet::all_ninety(2));
        assert!(cdg.topological_order().is_none());
    }

    #[test]
    fn topological_order_respects_edges() {
        let mesh = Mesh::new_2d(4, 3);
        let cdg = Cdg::from_turn_set(&mesh, &presets::negative_first_turns(2));
        let order = cdg.topological_order().expect("acyclic");
        let mut pos = vec![0usize; cdg.channels().len()];
        for (i, c) in order.iter().enumerate() {
            pos[c.index()] = i;
        }
        for ch in cdg.channels() {
            for &succ in cdg.successors(ch.id()) {
                assert!(
                    pos[ch.id().index()] < pos[succ as usize],
                    "edge violates topological order"
                );
            }
        }
    }

    /// Exhaustive ground truth for minimality: depth-bounded DFS over all
    /// simple paths — is there any cycle with fewer than `k` channels?
    fn has_cycle_shorter_than(cdg: &Cdg, k: usize) -> bool {
        fn dfs(
            cdg: &Cdg,
            s: usize,
            v: usize,
            depth: usize,
            k: usize,
            on_path: &mut [bool],
        ) -> bool {
            for &w in cdg.successors(ChannelId(v as u32)) {
                let w = w as usize;
                if w == s && depth + 1 < k {
                    return true;
                }
                if !on_path[w] && depth + 1 < k {
                    on_path[w] = true;
                    if dfs(cdg, s, w, depth + 1, k, on_path) {
                        return true;
                    }
                    on_path[w] = false;
                }
            }
            false
        }
        let n = cdg.channels().len();
        (0..n).any(|s| {
            let mut on_path = vec![false; n];
            on_path[s] = true;
            dfs(cdg, s, s, 0, k, &mut on_path)
        })
    }

    #[test]
    fn shortest_cycle_is_globally_minimal() {
        let mesh = Mesh::new_2d(4, 4);
        let cdg = Cdg::from_turn_set(&mesh, &TurnSet::all_ninety(2));
        let cycle = cdg
            .find_shortest_cycle()
            .expect("unrestricted turns deadlock");
        // It is a genuine cycle in find_cycle()'s format.
        for (i, &c) in cycle.iter().enumerate() {
            let next = cycle[(i + 1) % cycle.len()];
            assert!(cdg.successors(c).contains(&next.0));
        }
        // Minimality, proven by an independent exhaustive search.
        assert!(
            !has_cycle_shorter_than(&cdg, cycle.len()),
            "a cycle shorter than {} exists",
            cycle.len()
        );
        // And the known girth of the unrestricted 2D mesh CDG: the four
        // channels around one unit square.
        assert_eq!(cycle.len(), 4);
    }

    #[test]
    fn shortest_cycle_is_none_on_acyclic_and_deterministic_otherwise() {
        let mesh = Mesh::new_2d(4, 4);
        assert!(Cdg::from_turn_set(&mesh, &presets::xy_turns())
            .find_shortest_cycle()
            .is_none());
        let a = Cdg::from_turn_set(&mesh, &TurnSet::all_ninety(2));
        let b = Cdg::from_turn_set(&mesh, &TurnSet::all_ninety(2));
        assert_eq!(a.find_shortest_cycle(), b.find_shortest_cycle());
    }

    #[test]
    fn edge_count_straight_only() {
        // With no turns allowed, edges are straight continuations only.
        let mesh = Mesh::new_2d(4, 4);
        let cdg = Cdg::from_turn_set(&mesh, &TurnSet::no_turns(2));
        // Horizontal: each row has chains of length 3 (x: 0->1->2->3), so
        // 2 straight-dependencies per row per direction; same vertically.
        assert_eq!(cdg.num_edges(), 4 * 2 * 2 + 4 * 2 * 2);
        assert!(cdg.is_acyclic());
    }
}
