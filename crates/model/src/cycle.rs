//! Abstract cycles formed by turns (Section 2, Figures 2–4, Theorem 1).
//!
//! In each of the `n(n-1)/2` planes of an *n*-dimensional mesh, the eight
//! 90-degree turns of the plane form two abstract cycles — one clockwise,
//! one counterclockwise — of four turns each. A routing algorithm must
//! prohibit at least one turn in every abstract cycle to prevent deadlock
//! (necessary by Theorem 1); whether the surviving turns admit more complex
//! cycles is then settled mechanically by the channel dependency graph
//! ([`crate::Cdg`]).

use crate::{Cdg, Turn, TurnSet};
use turnroute_topology::{Direction, Mesh, Sign, Topology};

/// The rotational orientation of an abstract cycle within a plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The cycle of four "right" turns (in the 2D plane: north→east,
    /// east→south, south→west, west→north).
    Clockwise,
    /// The cycle of four "left" turns (north→west, west→south,
    /// south→east, east→north).
    Counterclockwise,
}

/// One abstract cycle: four turns in a single plane whose composition
/// returns a packet to its original direction of travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AbstractCycle {
    plane: (usize, usize),
    orientation: Orientation,
    turns: [Turn; 4],
}

impl AbstractCycle {
    /// The plane `(i, j)` with `i < j` this cycle lies in.
    pub fn plane(&self) -> (usize, usize) {
        self.plane
    }

    /// The cycle's orientation.
    pub fn orientation(&self) -> Orientation {
        self.orientation
    }

    /// The four turns of the cycle, in travel order.
    pub fn turns(&self) -> &[Turn; 4] {
        &self.turns
    }

    /// Whether `set` prohibits at least one turn of this cycle (i.e. the
    /// cycle is broken).
    pub fn is_broken_by(&self, set: &TurnSet) -> bool {
        self.turns.iter().any(|&t| !set.is_turn_allowed(t))
    }
}

impl std::fmt::Display for AbstractCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "plane ({}, {}) {:?}: {} {} {} {}",
            self.plane.0,
            self.plane.1,
            self.orientation,
            self.turns[0],
            self.turns[1],
            self.turns[2],
            self.turns[3]
        )
    }
}

/// Enumerate the `n(n-1)` abstract cycles of an `n`-dimensional mesh
/// (two per plane).
pub fn abstract_cycles(num_dims: usize) -> Vec<AbstractCycle> {
    let mut out = Vec::new();
    for i in 0..num_dims {
        for j in (i + 1)..num_dims {
            let pi = Direction::new(i, Sign::Plus);
            let ni = Direction::new(i, Sign::Minus);
            let pj = Direction::new(j, Sign::Plus);
            let nj = Direction::new(j, Sign::Minus);
            // Clockwise (right turns), in the 2D plane with i as x and j
            // as y: north→east, east→south, south→west, west→north.
            out.push(AbstractCycle {
                plane: (i, j),
                orientation: Orientation::Clockwise,
                turns: [
                    Turn::new(pj, pi),
                    Turn::new(pi, nj),
                    Turn::new(nj, ni),
                    Turn::new(ni, pj),
                ],
            });
            // Counterclockwise (left turns): north→west, west→south,
            // south→east, east→north.
            out.push(AbstractCycle {
                plane: (i, j),
                orientation: Orientation::Counterclockwise,
                turns: [
                    Turn::new(pj, ni),
                    Turn::new(ni, nj),
                    Turn::new(nj, pi),
                    Turn::new(pi, pj),
                ],
            });
        }
    }
    out
}

/// Whether `set` breaks every abstract cycle — the *necessary* condition of
/// Theorem 1. Not sufficient on its own: turns surviving in different
/// cycles can compose into complex cycles (Figure 4), which
/// [`Cdg::from_turn_set`] detects.
pub fn breaks_all_abstract_cycles(set: &TurnSet) -> bool {
    abstract_cycles(set.num_dims())
        .iter()
        .all(|c| c.is_broken_by(set))
}

/// The number of 90-degree turns in an `n`-dimensional mesh: `4n(n-1)`.
pub fn num_ninety_turns(num_dims: usize) -> usize {
    4 * num_dims * num_dims.saturating_sub(1)
}

/// The number of abstract cycles in an `n`-dimensional mesh: `n(n-1)`.
pub fn num_abstract_cycles(num_dims: usize) -> usize {
    num_dims * num_dims.saturating_sub(1)
}

/// The minimum number of turns that must be prohibited to prevent deadlock
/// in an `n`-dimensional mesh (Theorem 1): `n(n-1)`, one per abstract
/// cycle — a quarter of all turns.
pub fn min_prohibited_turns(num_dims: usize) -> usize {
    num_dims * num_dims.saturating_sub(1)
}

/// A three-turn abstract cycle of a hexagonal network.
///
/// Section 7 notes that in topologies like hexagonal meshes "the turns
/// are not necessarily 90-degrees and the abstract cycles are not
/// necessarily formed by four turns": the minimal hex cycles are
/// *triangles*. With axes `A = (1,0)`, `B = (0,1)`, `C = (1,-1)` in axial
/// coordinates, the direction multisets `{+A, -B, -C}` and `{-A, +B, +C}`
/// each sum to zero, and each can be traversed in two cyclic orders —
/// four triangle cycles of three turns each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HexCycle {
    turns: [Turn; 3],
}

impl HexCycle {
    /// The three turns of the cycle, in travel order.
    pub fn turns(&self) -> &[Turn; 3] {
        &self.turns
    }

    /// Whether `set` prohibits at least one turn of this cycle.
    pub fn is_broken_by(&self, set: &TurnSet) -> bool {
        self.turns.iter().any(|&t| !set.is_turn_allowed(t))
    }
}

impl std::fmt::Display for HexCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hex triangle: {} {} {}",
            self.turns[0], self.turns[1], self.turns[2]
        )
    }
}

/// Enumerate the four triangle cycles of a hexagonal network (directions
/// indexed as three [`Direction`] axes).
pub fn hex_abstract_cycles() -> Vec<HexCycle> {
    let pa = Direction::new(0, Sign::Plus);
    let na = Direction::new(0, Sign::Minus);
    let pb = Direction::new(1, Sign::Plus);
    let nb = Direction::new(1, Sign::Minus);
    let pc = Direction::new(2, Sign::Plus);
    let nc = Direction::new(2, Sign::Minus);
    let triangle = |a: Direction, b: Direction, c: Direction| HexCycle {
        turns: [Turn::new(a, b), Turn::new(b, c), Turn::new(c, a)],
    };
    vec![
        // {+A, -B, -C} in its two cyclic orders.
        triangle(pa, nb, nc),
        triangle(pa, nc, nb),
        // {-A, +B, +C} in its two cyclic orders.
        triangle(na, pb, pc),
        triangle(na, pc, pb),
    ]
}

/// Whether `set` (over three axes) breaks every hexagonal triangle cycle
/// — the hex analog of [`breaks_all_abstract_cycles`]. Necessary, not
/// sufficient; [`Cdg::from_turn_set`] on a
/// [`turnroute_topology::HexMesh`] remains the full verdict.
pub fn breaks_all_hex_cycles(set: &TurnSet) -> bool {
    assert_eq!(set.num_dims(), 3, "hexagonal turn sets span three axes");
    hex_abstract_cycles().iter().all(|c| c.is_broken_by(set))
}

/// The outcome of the Section 3 census over all two-turn prohibitions in a
/// 2D mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoTurnCensus {
    /// Each of the 16 candidate turn sets (one turn prohibited from each of
    /// the two abstract cycles), with its deadlock-freedom verdict.
    pub entries: Vec<(TurnSet, bool)>,
}

impl TwoTurnCensus {
    /// Number of candidate prohibitions examined (always 16 in 2D).
    pub fn total(&self) -> usize {
        self.entries.len()
    }

    /// Number of deadlock-free prohibitions (the paper reports 12).
    pub fn deadlock_free(&self) -> usize {
        self.entries.iter().filter(|(_, free)| *free).count()
    }
}

/// Enumerate all 16 ways of prohibiting one turn from each of the two
/// abstract cycles of a 2D mesh and decide, via the channel dependency
/// graph on `mesh`, which prevent deadlock.
///
/// The paper (Section 3) reports that 12 of the 16 prevent deadlock and
/// that three are unique once symmetry is accounted for (west-first,
/// north-last, negative-first).
pub fn two_turn_census(mesh: &Mesh) -> TwoTurnCensus {
    let cycles = abstract_cycles(2);
    assert_eq!(cycles.len(), 2);
    let (cw, ccw) = (&cycles[0], &cycles[1]);
    let mut entries = Vec::with_capacity(16);
    for &t_cw in cw.turns() {
        for &t_ccw in ccw.turns() {
            let mut set = TurnSet::all_ninety(2);
            set.prohibit(t_cw);
            set.prohibit(t_ccw);
            let free = Cdg::from_turn_set(mesh, &set).find_cycle().is_none();
            entries.push((set, free));
        }
    }
    TwoTurnCensus { entries }
}

/// The n-dimensional generalization of [`two_turn_census`]: enumerate
/// every way of prohibiting exactly one turn from each of the `n(n-1)`
/// abstract cycles (the Theorem 1 minimum) and decide which prevent
/// deadlock via the channel dependency graph on `mesh`.
///
/// The paper runs this census only for 2D (16 candidates, 12 safe); for
/// 3D there are `4^6 = 4096` candidates — an analysis this reproduction
/// adds. Because breaking every plane's cycles is necessary but not
/// sufficient (Figure 4's complex cycles generalize), far fewer than
/// 4096 survive.
///
/// # Panics
///
/// Panics if `mesh` has more than 3 dimensions (the candidate count is
/// `4^{n(n-1)}`; n = 4 already means 16.7 million CDG checks).
pub fn one_turn_per_cycle_census(mesh: &Mesh) -> TwoTurnCensus {
    let n = mesh.num_dims();
    assert!(n <= 3, "census is exponential; use n <= 3");
    let cycles = abstract_cycles(n);
    let total = 4usize.pow(cycles.len() as u32);
    let mut entries = Vec::with_capacity(total);
    for mut index in 0..total {
        let mut set = TurnSet::all_ninety(n);
        for cycle in &cycles {
            set.prohibit(cycle.turns()[index % 4]);
            index /= 4;
        }
        let free = Cdg::from_turn_set(mesh, &set).find_cycle().is_none();
        entries.push((set, free));
    }
    TwoTurnCensus { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn cycle_counts_match_paper() {
        for n in 2..=6 {
            assert_eq!(abstract_cycles(n).len(), n * (n - 1));
            assert_eq!(num_abstract_cycles(n), n * (n - 1));
            assert_eq!(num_ninety_turns(n), 4 * n * (n - 1));
            assert_eq!(min_prohibited_turns(n), n * (n - 1));
        }
        assert!(abstract_cycles(1).is_empty());
    }

    #[test]
    fn cycle_turns_chain_and_close() {
        // Each cycle's turns chain: turn k ends in the direction turn k+1
        // starts from, and the last chains back to the first.
        for cycle in abstract_cycles(4) {
            let turns = cycle.turns();
            for k in 0..4 {
                assert_eq!(turns[k].to_dir(), turns[(k + 1) % 4].from_dir());
            }
        }
    }

    #[test]
    fn cycle_turns_are_distinct_across_cycles() {
        // The 8 turns of a plane split 4/4 between its two cycles.
        let cycles = abstract_cycles(2);
        let mut all: Vec<Turn> = Vec::new();
        for c in &cycles {
            all.extend_from_slice(c.turns());
        }
        all.sort_by_key(|t| (t.from_dir().index(), t.to_dir().index()));
        all.dedup();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn unrestricted_turns_break_nothing() {
        let set = TurnSet::all_ninety(3);
        assert!(!breaks_all_abstract_cycles(&set));
    }

    #[test]
    fn xy_breaks_all_cycles() {
        assert!(breaks_all_abstract_cycles(&presets::xy_turns()));
    }

    #[test]
    fn partially_adaptive_presets_break_all_cycles() {
        assert!(breaks_all_abstract_cycles(&presets::west_first_turns()));
        assert!(breaks_all_abstract_cycles(&presets::north_last_turns()));
        assert!(breaks_all_abstract_cycles(&presets::negative_first_turns(
            2
        )));
        assert!(breaks_all_abstract_cycles(&presets::negative_first_turns(
            4
        )));
    }

    #[test]
    fn hex_cycles_chain_and_close() {
        let cycles = hex_abstract_cycles();
        assert_eq!(cycles.len(), 4);
        for c in &cycles {
            for k in 0..3 {
                assert_eq!(c.turns()[k].to_dir(), c.turns()[(k + 1) % 3].from_dir());
            }
        }
    }

    #[test]
    fn negative_first_breaks_all_hex_triangles() {
        // Every triangle mixes positive and negative directions, so it
        // contains a positive-to-negative turn — which NF prohibits.
        assert!(breaks_all_hex_cycles(&presets::negative_first_turns(3)));
        assert!(!breaks_all_hex_cycles(&TurnSet::all_ninety(3)));
    }

    #[test]
    fn hex_triangle_display() {
        let c = hex_abstract_cycles()[0];
        let s = c.to_string();
        assert!(s.starts_with("hex triangle"), "{s}");
    }

    #[test]
    fn census_finds_twelve_deadlock_free() {
        let mesh = Mesh::new_2d(4, 4);
        let census = two_turn_census(&mesh);
        assert_eq!(census.total(), 16);
        assert_eq!(census.deadlock_free(), 12);
    }

    #[test]
    fn generalized_census_matches_two_turn_census_in_2d() {
        let mesh = Mesh::new_2d(4, 4);
        let general = one_turn_per_cycle_census(&mesh);
        assert_eq!(general.total(), 16);
        assert_eq!(general.deadlock_free(), 12);
    }

    #[test]
    fn census_3d_contains_negative_first_as_safe() {
        let mesh = Mesh::new_cubic(3, 3);
        let census = one_turn_per_cycle_census(&mesh);
        assert_eq!(census.total(), 4096);
        let free = census.deadlock_free();
        assert!(free > 0, "some 3D prohibition must be safe");
        assert!(free < 4096, "complex cycles must kill some candidates");
        // Negative-first's choice is among the safe ones.
        let nf = presets::negative_first_turns(3);
        let found = census.entries.iter().any(|(set, ok)| *ok && *set == nf);
        assert!(found, "negative-first missing from the safe census entries");
    }

    #[test]
    fn census_entries_all_break_abstract_cycles() {
        // Every census entry breaks both abstract cycles by construction,
        // yet four of them still deadlock (Figure 4's complex cycles):
        // breaking abstract cycles is necessary, not sufficient.
        let mesh = Mesh::new_2d(4, 4);
        for (set, _) in two_turn_census(&mesh).entries {
            assert!(breaks_all_abstract_cycles(&set));
        }
    }
}
