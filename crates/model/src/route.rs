//! The routing-function interface implemented by concrete algorithms.

use crate::TurnSet;
use turnroute_topology::{DirSet, Direction, NodeId, Topology};

/// A wormhole routing function: given where a packet is, where it is going,
/// and how it got here, which output directions may it take next?
///
/// Implementations live in the `turnroute-routing` crate; analyses
/// ([`crate::Cdg::from_routing`], [`crate::adaptiveness`]) and the
/// simulator consume the trait.
///
/// # Contract
///
/// * `route` returns the empty set iff `current == dest` (the packet is
///   delivered to the local processor).
/// * Every returned direction must correspond to an existing channel
///   (`topo.neighbor(current, dir).is_some()`).
/// * For a minimal function ([`RoutingFunction::is_minimal`] is `true`),
///   every returned direction must reduce the distance to `dest`.
/// * The function must be *connected*: following any sequence of returned
///   directions eventually reaches `dest`.
/// * If [`RoutingFunction::turn_set`] returns a set, every move the
///   function makes must use an allowed turn of that set — this is what
///   ties a concrete algorithm back to the turn model, and tests enforce
///   it.
pub trait RoutingFunction {
    /// A short human-readable name, e.g. `"west-first"`.
    fn name(&self) -> &str;

    /// Legal output directions for a packet at `current`, destined for
    /// `dest`, that arrived traveling in `arrived` (`None` when the packet
    /// is being injected at `current`).
    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet;

    /// Whether this function only ever offers shortest-path moves.
    fn is_minimal(&self) -> bool;

    /// The turn set the function's moves are drawn from, when it is a pure
    /// turn-model algorithm over `num_dims` dimensions. Algorithms whose
    /// legality depends on more than the pair of directions (e.g. torus
    /// wraparound rules) return `None` and are verified through
    /// [`crate::Cdg::from_routing`] instead.
    fn turn_set(&self, num_dims: usize) -> Option<TurnSet> {
        let _ = num_dims;
        None
    }
}

impl<T: RoutingFunction + ?Sized> RoutingFunction for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        (**self).route(topo, current, dest, arrived)
    }

    fn is_minimal(&self) -> bool {
        (**self).is_minimal()
    }

    fn turn_set(&self, num_dims: usize) -> Option<TurnSet> {
        (**self).turn_set(num_dims)
    }
}

impl<T: RoutingFunction + ?Sized> RoutingFunction for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        (**self).route(topo, current, dest, arrived)
    }

    fn is_minimal(&self) -> bool {
        (**self).is_minimal()
    }

    fn turn_set(&self, num_dims: usize) -> Option<TurnSet> {
        (**self).turn_set(num_dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::Mesh;

    /// A trivial minimal fully-adaptive function used to test the blanket
    /// impls.
    struct FullyAdaptive;

    impl RoutingFunction for FullyAdaptive {
        fn name(&self) -> &str {
            "fully-adaptive"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            _arrived: Option<Direction>,
        ) -> DirSet {
            topo.productive_dirs(current, dest)
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    #[test]
    fn blanket_impls_delegate() {
        let mesh = Mesh::new_2d(4, 4);
        let f = FullyAdaptive;
        let by_ref: &dyn RoutingFunction = &&f;
        let boxed: Box<dyn RoutingFunction> = Box::new(FullyAdaptive);
        let a = NodeId(0);
        let b = NodeId(15);
        assert_eq!(by_ref.name(), "fully-adaptive");
        assert_eq!(boxed.name(), "fully-adaptive");
        assert!(by_ref.is_minimal() && boxed.is_minimal());
        assert_eq!(by_ref.route(&mesh, a, b, None), f.route(&mesh, a, b, None));
        assert_eq!(boxed.route(&mesh, a, b, None), f.route(&mesh, a, b, None));
        assert!(by_ref.turn_set(2).is_none());
        assert!(boxed.turn_set(2).is_none());
    }
}
