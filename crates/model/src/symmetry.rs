//! Symmetries of turn sets.
//!
//! Section 3 states that of the 12 deadlock-free two-turn prohibitions,
//! "three are unique if symmetry is taken into account" — west-first,
//! north-last, and negative-first. This module makes that mechanical: the
//! symmetries of an *n*-dimensional mesh are the *signed permutations* of
//! its axes (the hyperoctahedral group, of order `2^n · n!`; for the 2D
//! mesh this is the dihedral group of the square, order 8). A symmetry
//! acts on directions, hence on turns, hence on turn sets; two turn sets
//! are equivalent iff one maps onto the other.

use crate::{Turn, TurnSet};
use turnroute_topology::Direction;

/// One mesh symmetry: dimension `i` maps to dimension `perm[i]`, with its
/// sign flipped iff `flip[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symmetry {
    perm: Vec<usize>,
    flip: Vec<bool>,
}

impl Symmetry {
    /// The identity symmetry on `n` dimensions.
    pub fn identity(n: usize) -> Symmetry {
        Symmetry {
            perm: (0..n).collect(),
            flip: vec![false; n],
        }
    }

    /// Apply the symmetry to a direction.
    pub fn apply_dir(&self, dir: Direction) -> Direction {
        let dim = self.perm[dir.dim()];
        let sign = if self.flip[dir.dim()] {
            dir.sign().opposite()
        } else {
            dir.sign()
        };
        Direction::new(dim, sign)
    }

    /// Apply the symmetry to a turn.
    pub fn apply_turn(&self, turn: Turn) -> Turn {
        Turn::new(
            self.apply_dir(turn.from_dir()),
            self.apply_dir(turn.to_dir()),
        )
    }

    /// Apply the symmetry to a node's mesh coordinates under the given
    /// per-dimension `radix` (the mesh side lengths): dimension `i` of
    /// the input lands in dimension `perm[i]` of the output, mirrored
    /// across the axis when `flip[i]`.
    ///
    /// This is the node-level action matching [`Symmetry::apply_dir`] —
    /// the ingredient `turncheck` needs to canonicalize whole network
    /// states, not just turn sets: a symmetry is only valid on a mesh
    /// whose side lengths it preserves, hence the radix assertion.
    ///
    /// # Panics
    ///
    /// Panics if `coords`/`radix` do not match the symmetry's dimension
    /// count, or if the permutation maps between dimensions of different
    /// radix (the symmetry would not be a graph automorphism).
    pub fn apply_coords(&self, coords: &[u16], radix: &[u16]) -> Vec<u16> {
        assert_eq!(coords.len(), self.perm.len(), "dimension mismatch");
        assert_eq!(radix.len(), self.perm.len(), "dimension mismatch");
        let mut out = vec![0u16; coords.len()];
        for (i, (&c, &r)) in coords.iter().zip(radix).enumerate() {
            assert_eq!(
                radix[self.perm[i]], r,
                "symmetry maps between dimensions of different radix"
            );
            out[self.perm[i]] = if self.flip[i] { r - 1 - c } else { c };
        }
        out
    }

    /// Apply the symmetry to a whole turn set.
    pub fn apply(&self, set: &TurnSet) -> TurnSet {
        let n = set.num_dims();
        let mut out = TurnSet::no_turns(n);
        for t in Turn::all_ninety(n) {
            if set.is_turn_allowed(t) {
                out.allow(self.apply_turn(t));
            }
        }
        for t in Turn::all_one_eighty(n) {
            if set.is_turn_allowed(t) {
                out.allow(self.apply_turn(t));
            }
        }
        out
    }
}

/// Enumerate the full hyperoctahedral group on `n` dimensions: all
/// `2^n · n!` signed permutations (8 for the 2D mesh, 48 for 3D).
///
/// # Panics
///
/// Panics if `n > 5` (the group grows as `2^n n!`).
pub fn mesh_symmetries(n: usize) -> Vec<Symmetry> {
    assert!(n <= 5, "hyperoctahedral group too large beyond n = 5");
    let mut perms = Vec::new();
    permutations(&mut (0..n).collect::<Vec<_>>(), 0, &mut perms);
    let mut out = Vec::with_capacity((1 << n) * perms.len());
    for perm in &perms {
        for mask in 0..(1u32 << n) {
            let flip = (0..n).map(|i| mask & (1 << i) != 0).collect();
            out.push(Symmetry {
                perm: perm.clone(),
                flip,
            });
        }
    }
    out
}

fn permutations(items: &mut Vec<usize>, start: usize, out: &mut Vec<Vec<usize>>) {
    if start == items.len() {
        out.push(items.clone());
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        permutations(items, start + 1, out);
        items.swap(start, i);
    }
}

/// Group turn sets into equivalence classes under the mesh symmetries.
/// Returns one `Vec` of indices (into `sets`) per class, each class led
/// by its first member.
pub fn equivalence_classes(sets: &[TurnSet]) -> Vec<Vec<usize>> {
    if sets.is_empty() {
        return Vec::new();
    }
    let n = sets[0].num_dims();
    let group = mesh_symmetries(n);
    let mut assigned: Vec<Option<usize>> = vec![None; sets.len()];
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for i in 0..sets.len() {
        if assigned[i].is_some() {
            continue;
        }
        let class_id = classes.len();
        assigned[i] = Some(class_id);
        let mut members = vec![i];
        // Every image of sets[i] under the group identifies classmates.
        let images: Vec<TurnSet> = group.iter().map(|g| g.apply(&sets[i])).collect();
        for (j, candidate) in sets.iter().enumerate().skip(i + 1) {
            if assigned[j].is_none() && images.iter().any(|img| img == candidate) {
                assigned[j] = Some(class_id);
                members.push(j);
            }
        }
        classes.push(members);
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{one_turn_per_cycle_census, two_turn_census};
    use crate::presets;
    use turnroute_topology::Mesh;

    #[test]
    fn group_orders() {
        assert_eq!(mesh_symmetries(1).len(), 2);
        assert_eq!(mesh_symmetries(2).len(), 8);
        assert_eq!(mesh_symmetries(3).len(), 48);
    }

    #[test]
    fn identity_fixes_turn_sets() {
        let set = presets::west_first_turns();
        assert_eq!(Symmetry::identity(2).apply(&set), set);
    }

    #[test]
    fn symmetry_maps_directions_consistently() {
        // Swap axes and flip the new dimension 1: east -> north-flipped.
        let g = Symmetry {
            perm: vec![1, 0],
            flip: vec![true, false],
        };
        assert_eq!(g.apply_dir(Direction::EAST), Direction::SOUTH);
        assert_eq!(g.apply_dir(Direction::NORTH), Direction::EAST);
    }

    #[test]
    fn coordinate_action_commutes_with_direction_action() {
        // Stepping then mapping equals mapping then stepping in the
        // mapped direction — apply_coords really is the node-level action
        // matching apply_dir, on every group element of the 4×4 mesh.
        let radix = [4u16, 4u16];
        let step = |c: &[u16], dir: Direction| -> Option<Vec<u16>> {
            let mut out = c.to_vec();
            let v = out[dir.dim()];
            out[dir.dim()] = if dir.sign() == turnroute_topology::Sign::Plus {
                if v + 1 >= radix[dir.dim()] {
                    return None;
                }
                v + 1
            } else {
                v.checked_sub(1)?
            };
            Some(out)
        };
        for g in mesh_symmetries(2) {
            for x in 0..4u16 {
                for y in 0..4u16 {
                    let c = [x, y];
                    for dir in Direction::all(2) {
                        let Some(stepped) = step(&c, dir) else {
                            continue;
                        };
                        assert_eq!(
                            g.apply_coords(&stepped, &radix),
                            step(&g.apply_coords(&c, &radix), g.apply_dir(dir))
                                .expect("automorphism keeps steps in bounds"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn paper_claim_three_unique_deadlock_free_prohibitions() {
        // The headline: the 12 safe two-turn prohibitions fall into
        // exactly 3 symmetry classes (west-first, north-last,
        // negative-first), and the 4 unsafe ones into 1 (Figure 4).
        let mesh = Mesh::new_2d(4, 4);
        let census = two_turn_census(&mesh);
        let safe: Vec<TurnSet> = census
            .entries
            .iter()
            .filter(|(_, free)| *free)
            .map(|(s, _)| s.clone())
            .collect();
        assert_eq!(safe.len(), 12);
        assert_eq!(equivalence_classes(&safe).len(), 3);

        let unsafe_sets: Vec<TurnSet> = census
            .entries
            .iter()
            .filter(|(_, free)| !*free)
            .map(|(s, _)| s.clone())
            .collect();
        assert_eq!(unsafe_sets.len(), 4);
        assert_eq!(equivalence_classes(&unsafe_sets).len(), 1);
    }

    #[test]
    fn the_three_classes_contain_the_named_algorithms() {
        let mesh = Mesh::new_2d(4, 4);
        let census = two_turn_census(&mesh);
        let safe: Vec<TurnSet> = census
            .entries
            .iter()
            .filter(|(_, free)| *free)
            .map(|(s, _)| s.clone())
            .collect();
        let classes = equivalence_classes(&safe);
        let named = [
            presets::west_first_turns(),
            presets::north_last_turns(),
            presets::negative_first_turns(2),
        ];
        // Each named algorithm's turn set lands in a distinct class.
        let mut found = Vec::new();
        for name_set in &named {
            let class = classes
                .iter()
                .position(|c| {
                    c.iter().any(|&i| {
                        let group = mesh_symmetries(2);
                        group.iter().any(|g| &g.apply(&safe[i]) == name_set)
                    })
                })
                .expect("named algorithm not found in any class");
            found.push(class);
        }
        found.sort_unstable();
        found.dedup();
        assert_eq!(
            found.len(),
            3,
            "the three algorithms span the three classes"
        );
    }

    #[test]
    fn three_d_census_class_count() {
        // An extension result: the 176 safe one-turn-per-cycle
        // prohibitions of the 3D mesh fall into a small number of
        // symmetry classes under the 48-element group.
        let mesh = Mesh::new_cubic(3, 3);
        let census = one_turn_per_cycle_census(&mesh);
        let safe: Vec<TurnSet> = census
            .entries
            .iter()
            .filter(|(_, free)| *free)
            .map(|(s, _)| s.clone())
            .collect();
        assert_eq!(safe.len(), 176);
        let classes = equivalence_classes(&safe);
        // The 3D analog of the paper's "three are unique": exactly nine
        // symmetry classes, with negative-first in one of size 8.
        assert_eq!(classes.len(), 9, "got {} classes", classes.len());
        let covered: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(covered, 176);
        let nf = presets::negative_first_turns(3);
        let group = mesh_symmetries(3);
        let nf_class = classes
            .iter()
            .find(|c| {
                c.iter()
                    .any(|&i| group.iter().any(|g| g.apply(&safe[i]) == nf))
            })
            .expect("negative-first class");
        assert_eq!(nf_class.len(), 8);
    }
}
