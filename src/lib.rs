//! # turnroute
//!
//! A from-scratch reproduction of *The Turn Model for Adaptive Routing*
//! (Glass & Ni): deadlock-free partially adaptive wormhole routing
//! algorithms for meshes, k-ary n-cubes, and hypercubes, the analysis
//! machinery behind the paper's theorems, a cycle-accurate flit-level
//! wormhole network simulator, and the workloads and harnesses that
//! regenerate every figure and table in the paper's evaluation.
//!
//! This facade crate re-exports the workspace's sub-crates under stable
//! module names:
//!
//! * [`topology`] — meshes, tori, hypercubes, coordinates, channels.
//! * [`model`] — turns, turn sets, abstract cycles, channel dependency
//!   graphs, channel numberings, adaptiveness analysis.
//! * [`routing`] — the concrete algorithms: xy, west-first, north-last,
//!   negative-first, dimension-order, ABONF, ABOPL, e-cube, p-cube, and
//!   the torus extensions.
//! * [`sim`] — the wormhole simulator (routers, flits, arbitration,
//!   injection, metrics, fault injection).
//! * [`traffic`] — uniform, transpose, reverse-flip, and other synthetic
//!   traffic patterns.
//! * [`vc`] — the virtual-channel extension: fully adaptive double-y
//!   routing (the paper's "forthcoming paper" direction).
//! * [`experiments`] — load sweeps and the per-figure experiment drivers.
//! * [`analysis`] — `turnlint`: exhaustive design-space censuses,
//!   livelock/progress proofs, and the invariant-sanitized simulation
//!   gate.
//!
//! # Quickstart
//!
//! ```
//! use turnroute::model::{Cdg, presets};
//! use turnroute::topology::{Mesh, Topology};
//!
//! // Verify, mechanically, that west-first routing cannot deadlock on an
//! // 8x8 mesh: its channel dependency graph is acyclic.
//! let mesh = Mesh::new_2d(8, 8);
//! let cdg = Cdg::from_turn_set(&mesh, &presets::west_first_turns());
//! assert!(cdg.is_acyclic());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use turnroute_analysis as analysis;
pub use turnroute_experiments as experiments;
pub use turnroute_model as model;
pub use turnroute_routing as routing;
pub use turnroute_sim as sim;
pub use turnroute_topology as topology;
pub use turnroute_traffic as traffic;
pub use turnroute_vc as vc;
